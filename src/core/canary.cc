#include "canary.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/eventlog.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/overload.h"
#include "common/streamtag.h"
#include "common/telemetry.h"
#include "reuse_audit.h"

namespace genreuse {
namespace canary {

namespace detail {

std::atomic<uint64_t> g_rate_bits{0};

namespace {

constexpr double kEwmaAlpha = 0.2;

/** One (owner, stream) series with Welford accumulators. */
struct Entry
{
    const void *owner = nullptr;
    uint16_t stream = 0;
    uint64_t samples = 0;
    uint64_t breaches = 0;
    double lastError = 0.0;
    double ewmaError = 0.0;
    double mean = 0.0;
    double m2 = 0.0; //!< Welford sum of squared deviations
    double worstError = 0.0;
};

struct Registry
{
    std::mutex mu;
    std::vector<Entry> entries;
    uint64_t telemetryToken = 0;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

std::atomic<uint64_t> g_samples{0};
std::atomic<uint64_t> g_breaches{0};

Entry &
slotLocked(Registry &r, const void *owner, uint16_t stream)
{
    for (Entry &e : r.entries) {
        if (e.owner == owner && e.stream == stream)
            return e;
    }
    r.entries.emplace_back();
    Entry &e = r.entries.back();
    e.owner = owner;
    e.stream = stream;
    return e;
}

double
ci95(const Entry &e)
{
    if (e.samples < 2)
        return 0.0;
    const double n = static_cast<double>(e.samples);
    const double var = e.m2 / (n - 1.0);
    return 1.96 * std::sqrt(var / n);
}

/** Arms the canary before main() when GENREUSE_CANARY parses to a
 *  positive rate. A malformed value is a user error: warn loudly. */
struct EnvInit
{
    EnvInit()
    {
        const char *v = std::getenv("GENREUSE_CANARY");
        if (v == nullptr || *v == '\0')
            return;
        char *end = nullptr;
        const double r = std::strtod(v, &end);
        if (end == nullptr || *end != '\0' || !(r >= 0.0)) {
            warn("GENREUSE_CANARY='", v,
                 "' is not a rate in [0, 1]; canary stays disarmed");
            return;
        }
        setRate(r);
    }
};

EnvInit g_env_init;

} // namespace

void
observeSlow(const void *owner, double rel_error, double rel_budget,
            uint64_t rows, bool breach)
{
    double ewma = rel_error;
    {
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mu);
        Entry &e = slotLocked(reg, owner, streamtag::current());
        e.lastError = rel_error;
        e.ewmaError = e.samples == 0
                          ? rel_error
                          : e.ewmaError +
                                kEwmaAlpha * (rel_error - e.ewmaError);
        ewma = e.ewmaError;
        ++e.samples;
        const double d = rel_error - e.mean;
        e.mean += d / static_cast<double>(e.samples);
        e.m2 += d * (rel_error - e.mean);
        e.worstError = std::max(e.worstError, rel_error);
        if (breach)
            ++e.breaches;
    }
    g_samples.fetch_add(1, std::memory_order_relaxed);
    static metrics::Counter &c_samples = metrics::counter("canary.samples");
    static metrics::Gauge &g_err = metrics::gauge("canary.error");
    c_samples.add();
    g_err.set(rel_error);
    if (eventlog::enabled() || breach) {
        eventlog::record(eventlog::Type::CanarySample,
                         eventlog::currentTag(), rel_error, rel_budget,
                         ewma, static_cast<uint32_t>(rows),
                         static_cast<uint8_t>(overload::level()));
    }
    if (breach) {
        g_breaches.fetch_add(1, std::memory_order_relaxed);
        static metrics::Counter &c_breaches =
            metrics::counter("canary.breaches");
        c_breaches.add();
        eventlog::record(eventlog::Type::CanaryBreach,
                         eventlog::currentTag(), rel_error, rel_budget,
                         ewma, static_cast<uint32_t>(rows),
                         static_cast<uint8_t>(overload::level()));
    }
}

} // namespace detail

double
rate()
{
    const uint64_t bits =
        detail::g_rate_bits.load(std::memory_order_relaxed);
    double r;
    static_assert(sizeof(r) == sizeof(bits), "double is 64-bit");
    std::memcpy(&r, &bits, sizeof(r));
    return r;
}

void
setRate(double r)
{
    if (!(r >= 0.0))
        r = 0.0;
    r = std::min(r, 1.0);
    uint64_t bits = 0;
    if (r > 0.0)
        std::memcpy(&bits, &r, sizeof(bits));
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    if (bits != 0 && reg.telemetryToken == 0) {
        reg.telemetryToken =
            telemetry::registerSource("canary", telemetryJson);
    } else if (bits == 0 && reg.telemetryToken != 0) {
        detail::g_rate_bits.store(0, std::memory_order_relaxed);
        const uint64_t token = reg.telemetryToken;
        reg.telemetryToken = 0;
        telemetry::unregisterSource(token);
        return;
    }
    detail::g_rate_bits.store(bits, std::memory_order_relaxed);
}

std::vector<CanaryStats>
snapshot()
{
    std::vector<CanaryStats> out;
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    out.reserve(reg.entries.size());
    for (const detail::Entry &e : reg.entries) {
        CanaryStats s;
        s.name = audit::nameOf(e.owner);
        s.stream = e.stream;
        s.samples = e.samples;
        s.breaches = e.breaches;
        s.lastError = e.lastError;
        s.ewmaError = e.ewmaError;
        s.meanError = e.mean;
        s.errorCi95 = detail::ci95(e);
        s.worstError = e.worstError;
        out.push_back(std::move(s));
    }
    return out;
}

uint64_t
totalSamples()
{
    return detail::g_samples.load(std::memory_order_relaxed);
}

uint64_t
totalBreaches()
{
    return detail::g_breaches.load(std::memory_order_relaxed);
}

void
reset()
{
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.entries.clear();
    detail::g_samples.store(0, std::memory_order_relaxed);
    detail::g_breaches.store(0, std::memory_order_relaxed);
}

namespace {

std::string
render(bool compact)
{
    std::vector<CanaryStats> series = snapshot();
    JsonWriter w(compact);
    w.beginObject();
    w.key("schema").value("genreuse.canary/1");
    w.key("rate").value(rate());
    w.key("samples").value(totalSamples());
    w.key("breaches").value(totalBreaches());
    w.key("series").beginArray();
    for (const CanaryStats &s : series) {
        w.beginObject();
        w.key("name").value(s.name);
        w.key("stream").value(static_cast<uint64_t>(s.stream));
        w.key("samples").value(s.samples);
        w.key("breaches").value(s.breaches);
        w.key("error_last").value(s.lastError);
        w.key("error_ewma").value(s.ewmaError);
        w.key("error_mean").value(s.meanError);
        w.key("error_ci95").value(s.errorCi95);
        w.key("error_worst").value(s.worstError);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace

std::string
toJson()
{
    return render(false);
}

std::string
telemetryJson()
{
    return render(true);
}

} // namespace canary
} // namespace genreuse
