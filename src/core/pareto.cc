#include "pareto.h"

#include <algorithm>

namespace genreuse {

namespace {

bool
dominates(const ParetoPoint &a, const ParetoPoint &b)
{
    const bool no_worse = a.cost <= b.cost && a.benefit >= b.benefit;
    const bool better = a.cost < b.cost || a.benefit > b.benefit;
    return no_worse && better;
}

} // namespace

std::vector<size_t>
paretoFront(const std::vector<ParetoPoint> &points)
{
    std::vector<size_t> front;
    for (size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (size_t j = 0; j < points.size() && !dominated; ++j)
            if (j != i && dominates(points[j], points[i]))
                dominated = true;
        if (!dominated)
            front.push_back(i);
    }
    std::sort(front.begin(), front.end(), [&](size_t a, size_t b) {
        return points[a].cost < points[b].cost;
    });
    return front;
}

std::vector<size_t>
paretoRank(const std::vector<ParetoPoint> &points)
{
    std::vector<size_t> rank(points.size(), 0);
    std::vector<bool> assigned(points.size(), false);
    size_t remaining = points.size();
    size_t level = 0;
    while (remaining > 0) {
        // Points not dominated by any other unassigned point.
        std::vector<size_t> this_front;
        for (size_t i = 0; i < points.size(); ++i) {
            if (assigned[i])
                continue;
            bool dominated = false;
            for (size_t j = 0; j < points.size() && !dominated; ++j) {
                if (j == i || assigned[j])
                    continue;
                if (dominates(points[j], points[i]))
                    dominated = true;
            }
            if (!dominated)
                this_front.push_back(i);
        }
        for (size_t i : this_front) {
            rank[i] = level;
            assigned[i] = true;
        }
        remaining -= this_front.size();
        level++;
    }
    return rank;
}

std::vector<size_t>
selectByParetoRank(const std::vector<ParetoPoint> &points, size_t count)
{
    std::vector<size_t> rank = paretoRank(points);
    std::vector<size_t> order(points.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (rank[a] != rank[b])
            return rank[a] < rank[b];
        return points[a].cost < points[b].cost;
    });
    if (order.size() > count)
        order.resize(count);
    return order;
}

} // namespace genreuse
