/**
 * @file
 * StreamContext — the per-inference-stream execution state that used
 * to hide in member and thread_local scratch. One fitted algorithm
 * serving N concurrent requests needs N copies of everything a forward
 * mutates (reorder buffers, cached permutations, cluster scratch,
 * drift/guard state) while sharing the single immutable fit (hash
 * families, column permutation, slicing plans). This type is the "N
 * copies" half of that split.
 *
 * Every thread always has a context: an implicit thread-default one
 * (id 0) materialized on first use, or an explicit one bound with
 * StreamContext::Bind — the serve engine binds stream i's context
 * around each request its pooled worker executes. current() is how the
 * core algorithms find their scratch, so single-threaded callers and
 * the exploration engine keep their exact pre-serve behavior (each
 * thread sees private scratch) with no signature changes, while the
 * serve path routes everything per stream:
 *
 *  - arena(): the stream's own Arena (explicit contexts) or the
 *    thread-local default (id 0). Bind also redirects
 *    Arena::forCurrentStream() here, so kernels follow automatically.
 *  - clusterScratch(): the per-kernel ClusterResult scratch that was a
 *    `static thread_local` in the vertical/horizontal/fc kernels —
 *    owned by whichever thread last ran, a use-after-rebind bug the
 *    moment two streams shared a pooled worker.
 *  - convScratch(owner, fitEpoch): ReuseConvAlgo's former member
 *    scratch (xr/wr/yTmp, cached row perm, band-remapped families,
 *    last-forward stats), keyed by algorithm instance and invalidated
 *    when the owner refits (the guard's re-cluster rung bumps the
 *    epoch).
 *  - guardState(owner): GuardedReuseConvAlgo's former member state
 *    (drift detectors, cached error budget, last rung) so one guarded
 *    algorithm tracks each stream's distribution independently — a
 *    drifting stream must not trip, re-cluster, or budget-boost its
 *    neighbors.
 *
 * Bind additionally tags the thread with the stream id
 * (common/streamtag.h) so journaled events and targeted fault
 * injection (GENREUSE_FAULT=...@stream) demux per stream. Bind does
 * NOT touch the eventlog layer-scope stack — a layer forward may bind
 * a context while its LayerScope is live; request-boundary cleanup is
 * eventlog::resetThreadScope(), called by the serve worker.
 *
 * A StreamContext is confined to one thread at a time (the serve
 * engine's 1:1 worker-owns-stream arrangement enforces this); it is
 * not internally synchronized.
 */

#ifndef GENREUSE_CORE_STREAM_CONTEXT_H
#define GENREUSE_CORE_STREAM_CONTEXT_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/streamtag.h"
#include "drift.h"
#include "lsh/clustering.h"
#include "reuse_stats.h"
#include "tensor/tensor.h"

namespace genreuse {

/**
 * One (ReuseConvAlgo, stream) pair's forward scratch: everything a
 * reuse-conv forward writes that is not part of the shared fit.
 * Reused across forwards so the steady state allocates nothing; reset
 * when the owning algorithm refits (fitEpoch moves).
 */
struct ConvStreamScratch
{
    const void *owner = nullptr; //!< the ReuseConvAlgo this belongs to
    uint64_t fitEpoch = ~uint64_t{0};

    Tensor xr, wr, yTmp; //!< reordered input/weights, pre-unpermute out

    std::vector<uint32_t> rowPerm; //!< cached row permutation…
    size_t rowPermBatch = static_cast<size_t>(-1); //!< …keyed on geometry
    size_t rowPermRows = static_cast<size_t>(-1);

    std::vector<HashFamily> mappedFamilies; //!< band-remapped fit copies
    size_t mappedNumBands = 0;
    size_t mappedBandHeight = 0;
    bool warnedBandMismatch = false;

    ReuseStats lastStats; //!< statistics of this stream's last forward

    /** Invalidate fit-derived caches for a new fit epoch (buffer
     *  capacity is kept — only the keys and flags reset). */
    void onNewEpoch(uint64_t epoch);
};

/**
 * One (GuardedReuseConvAlgo, stream) pair's guard state: the drift
 * detectors, the cached error budget and the last rung taken. The
 * detectors are created lazily by the guard (it owns the configs and
 * the signal-name convention); lastRung is stored as int to keep this
 * header below guard.h in the include order.
 */
struct GuardStreamState
{
    const void *owner = nullptr; //!< the GuardedReuseConvAlgo

    /** Inner fit epoch the budget was derived at (~0 = none yet). */
    uint64_t budgetEpoch = ~uint64_t{0};
    double perRowBound = 0.0; //!< K-scaled bound per sample row

    int lastRung = 0; //!< GuardRung of this stream's last forward

    /** Accuracy-canary sampling credit (canary::detail::shouldSample):
     *  deterministic per-stream accumulator, so a rate of 1.0 samples
     *  every forward and tests replay exactly. */
    double canaryCredit = 0.0;

    std::unique_ptr<DriftDetector> errDrift;
    std::unique_ptr<DriftDetector> clusterDrift;
};

class StreamContext
{
  public:
    /** clusterScratch() slots, one per reuse kernel. */
    static constexpr size_t kVertical = 0;
    static constexpr size_t kHorizontal = 1;
    static constexpr size_t kFc = 2;
    static constexpr size_t kNumClusterScratch = 3;

    /**
     * An explicit stream context owning its own arena (retention cap
     * from Arena::envRetainBytes()). @p id must be nonzero — 0 is the
     * thread-default context's id, and doubles as "no stream" in
     * event/fault stream tags.
     */
    explicit StreamContext(uint16_t id, std::string name = {});
    ~StreamContext();

    StreamContext(const StreamContext &) = delete;
    StreamContext &operator=(const StreamContext &) = delete;

    uint16_t id() const { return id_; }
    const std::string &name() const { return name_; }

    /** The stream's arena: the owned one (explicit contexts) or the
     *  calling thread's default (thread-default context). */
    Arena &arena();

    /** Per-kernel ClusterResult scratch (slot = kVertical…kFc). */
    ClusterResult &clusterScratch(size_t slot);

    /** This stream's scratch for @p owner, invalidated (caches reset,
     *  capacity kept) when @p fit_epoch differs from the last call. */
    ConvStreamScratch &convScratch(const void *owner, uint64_t fit_epoch);

    /** This stream's guard state for @p owner (created empty; the
     *  guard fills the detectors lazily). */
    GuardStreamState &guardState(const void *owner);

    /**
     * Quarantine reset: discard everything a (possibly panicking)
     * forward may have half-mutated — the arena is rewound and its
     * blocks released, cluster/conv scratch is dropped, and the guard
     * states (drift detectors, cached budgets, last rungs) are erased
     * so the guard lazily re-creates them re-armed. The shared fit is
     * untouched (it is immutable per contract), so the next request on
     * this context starts from the same state a fresh context would.
     * Caller must ensure no forward is live on the context.
     */
    void reset();

    /**
     * The calling thread's context: the innermost Bind, else the
     * thread-default context (id 0, created on first use).
     */
    static StreamContext &current();

    /**
     * RAII binding of a context to the calling thread: current()
     * returns it, Arena::forCurrentStream() returns its arena, and
     * streamtag::current() returns its id until destruction. Nests
     * (restores the previous binding); does not touch the eventlog
     * layer-scope stack.
     */
    class Bind
    {
      public:
        explicit Bind(StreamContext &ctx);
        ~Bind();

        Bind(const Bind &) = delete;
        Bind &operator=(const Bind &) = delete;

      private:
        StreamContext *prevCtx_;
        Arena *prevArena_;
        uint16_t prevStream_;
    };

  private:
    struct ThreadDefaultTag
    {
    };
    explicit StreamContext(ThreadDefaultTag);

    uint16_t id_;
    std::string name_;
    std::unique_ptr<Arena> ownedArena_; //!< null for the thread default
    ClusterResult clusterScratch_[kNumClusterScratch];
    std::vector<std::unique_ptr<ConvStreamScratch>> convScratch_;
    std::vector<std::unique_ptr<GuardStreamState>> guardStates_;
};

} // namespace genreuse

#endif // GENREUSE_CORE_STREAM_CONTEXT_H
