/**
 * @file
 * The analytic latency model (§4.2). Clustering reduces the GEMM's row
 * (or column) population from n vectors to n_c centroids; the
 * redundancy ratio r_t = 1 - n_c/n measures the saving, the hashing
 * GEMM adds an H/Dout relative overhead, and reuse pays off exactly
 * when the key condition H/Dout < r_t holds. Beyond the FLOPs model,
 * this module produces the full per-stage op-count ledger so the MCU
 * cost model can price transformation/clustering/GEMM/recovery
 * (Table 3's breakdown).
 */

#ifndef GENREUSE_CORE_LATENCY_MODEL_H
#define GENREUSE_CORE_LATENCY_MODEL_H

#include "mcu/cost_model.h"
#include "reuse_pattern.h"
#include "reuse_stats.h"
#include "tensor/tensor.h"

namespace genreuse {

/** Latency prediction for one layer under one pattern. */
struct LatencyEstimate
{
    ReusePattern pattern;
    ReuseStats stats;          //!< measured on the profiling sample
    CostLedger reuseLedger;    //!< per-sample-run op counts under reuse
    CostLedger exactLedger;    //!< op counts of the exact convolution

    /** r_t measured by the lightweight profiling run. */
    double redundancyRatio() const { return stats.redundancyRatio(); }

    /** The paper's FLOPs ratio (H/Dout + r_c); < 1 means fewer FLOPs. */
    double flopRatio(const ConvGeometry &geom) const;

    /** Key condition H/Dout < r_t (§4.2). */
    bool keyConditionHolds(const ConvGeometry &geom) const;

    /** Predicted latency of the reuse execution on a board. */
    double milliseconds(const CostModel &model) const;

    /** Predicted speedup of reuse over the exact convolution. */
    double speedup(const CostModel &model) const;
};

/** Op counts of the exact (CMSIS-NN style) im2col+GEMM convolution. */
CostLedger exactConvLedger(const ConvGeometry &geom);

/**
 * Profile @p pattern with lightweight random-hash reuse on a sample
 * (the analytic-model measurement path of Figure 8).
 *
 * @param sample_default_x im2col sample in default layout; use a
 *        single representative image (batch 1) so ledgers are
 *        per-image
 */
LatencyEstimate estimateLatency(const Tensor &sample_default_x,
                                const Tensor &w, const ReusePattern &pattern,
                                const ConvGeometry &geom, uint64_t seed = 7);

/**
 * estimateLatency() for a sample already in the pattern's row/column
 * order with matching pre-permuted weights. The exploration engine
 * calls this with memoized reorders; ledgers, stats, and therefore all
 * predictions are bit-identical to the default-layout entry point.
 */
LatencyEstimate estimateLatencyReordered(const Tensor &xr, const Tensor &wr,
                                         const ReusePattern &pattern,
                                         const ConvGeometry &geom,
                                         uint64_t seed = 7);

class ReuseConvAlgo;

/**
 * Per-image latency prediction for an *already fitted* algo — e.g. the
 * Learned-hash algo a deployment actually installs — rather than the
 * lightweight Random-hash profiling configuration. Charges exactly what
 * a traced Conv2D::forward() with this algo charges (im2col move, the
 * algo's own multiply accounting, bias/fold recovery), so summing these
 * estimates over the evaluation images reconciles with the runtime
 * op-ledger trace; table3_perf_breakdown asserts agreement within 1%.
 */
LatencyEstimate estimateLatencyFitted(ReuseConvAlgo &algo,
                                      const Tensor &sample_default_x,
                                      const Tensor &w,
                                      const ConvGeometry &geom);

} // namespace genreuse

#endif // GENREUSE_CORE_LATENCY_MODEL_H
