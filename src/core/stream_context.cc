#include "stream_context.h"

#include "common/logging.h"

namespace genreuse {

namespace {

thread_local StreamContext *t_current = nullptr;

} // namespace

void
ConvStreamScratch::onNewEpoch(uint64_t epoch)
{
    fitEpoch = epoch;
    // The row permutation only depends on the pattern and geometry, but
    // resetting its key is cheap and keeps "epoch moved" meaning "all
    // fit-derived caches rebuilt". The mapped families hold copies of
    // the *old* families and must go; the warn flag re-arms so a
    // band mismatch against the new fit is reported once per fit.
    rowPermBatch = static_cast<size_t>(-1);
    rowPermRows = static_cast<size_t>(-1);
    mappedFamilies.clear();
    mappedNumBands = 0;
    mappedBandHeight = 0;
    warnedBandMismatch = false;
}

StreamContext::StreamContext(uint16_t id, std::string name)
    : id_(id), name_(std::move(name)),
      ownedArena_(std::make_unique<Arena>())
{
    GENREUSE_REQUIRE(id != 0, "explicit StreamContext id must be nonzero "
                              "(0 is the thread-default context)");
    ownedArena_->setRetainBytes(Arena::envRetainBytes());
}

StreamContext::StreamContext(ThreadDefaultTag) : id_(0) {}

StreamContext::~StreamContext() = default;

Arena &
StreamContext::arena()
{
    if (ownedArena_)
        return *ownedArena_;
    return Arena::forCurrentStream();
}

ClusterResult &
StreamContext::clusterScratch(size_t slot)
{
    GENREUSE_REQUIRE(slot < kNumClusterScratch,
                     "bad cluster scratch slot ", slot);
    return clusterScratch_[slot];
}

ConvStreamScratch &
StreamContext::convScratch(const void *owner, uint64_t fit_epoch)
{
    // Linear scan: a context serves a handful of algorithm instances
    // (one per reuse-optimized layer), and the scan is branch-predicted
    // against pointers already in cache.
    for (auto &sc : convScratch_) {
        if (sc->owner == owner) {
            if (sc->fitEpoch != fit_epoch)
                sc->onNewEpoch(fit_epoch);
            return *sc;
        }
    }
    convScratch_.push_back(std::make_unique<ConvStreamScratch>());
    ConvStreamScratch &sc = *convScratch_.back();
    sc.owner = owner;
    sc.fitEpoch = fit_epoch;
    return sc;
}

GuardStreamState &
StreamContext::guardState(const void *owner)
{
    for (auto &st : guardStates_) {
        if (st->owner == owner)
            return *st;
    }
    guardStates_.push_back(std::make_unique<GuardStreamState>());
    GuardStreamState &st = *guardStates_.back();
    st.owner = owner;
    return st;
}

void
StreamContext::reset()
{
    if (ownedArena_) {
        ownedArena_->reset();
        // A panicking forward may have left poisoned bytes behind the
        // bump pointer; releasing the blocks (not just rewinding) puts
        // the arena in a truly fresh state. Retention config is kept.
        ownedArena_->releaseMemory();
    }
    for (auto &scratch : clusterScratch_)
        scratch = ClusterResult{};
    convScratch_.clear();
    guardStates_.clear();
}

StreamContext &
StreamContext::current()
{
    if (t_current != nullptr)
        return *t_current;
    static thread_local StreamContext def{ThreadDefaultTag{}};
    return def;
}

StreamContext::Bind::Bind(StreamContext &ctx)
    : prevCtx_(t_current),
      prevArena_(Arena::bindCurrentThread(&ctx.arena())),
      prevStream_(streamtag::bind(ctx.id()))
{
    t_current = &ctx;
}

StreamContext::Bind::~Bind()
{
    t_current = prevCtx_;
    Arena::bindCurrentThread(prevArena_);
    streamtag::bind(prevStream_);
}

} // namespace genreuse
