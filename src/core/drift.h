/**
 * @file
 * Accuracy-drift telemetry for the runtime guard (paper §5.3.6,
 * Table 4): the OOD experiment shows that when the input distribution
 * shifts, the per-forward reconstruction error and the realized
 * cluster count move *before* accuracy collapses. This module watches
 * those trajectories online with two classic, allocation-free
 * detectors:
 *
 *  - an EWMA that smooths the raw per-forward signal, and
 *  - a one-sided Page–Hinkley test that trips on a sustained upward
 *    shift of the mean: with running mean x̄_t and tolerance δ,
 *
 *        m_T = Σ_{t≤T} (x_t − x̄_t − δ),   M_T = min_{t≤T} m_t,
 *        trip  ⇔  m_T − M_T > λ.
 *
 *    δ absorbs in-distribution jitter; λ is the cumulative evidence
 *    required, so a single outlier cannot trip it but a persistent
 *    shift must.
 *
 * DriftDetector wraps both for one named signal, mirrors the state
 * into metrics gauges ("drift.<signal>.ewma", "drift.<signal>.ph"),
 * counts trips ("drift.trips"), and journals every observation as an
 * eventlog Drift event tagged with the enclosing layer. The guard
 * (src/core/guard.h) feeds it the error/budget ratio and the cluster
 * ratio each guarded forward, and boosts its verification sampling
 * rate while a detector is tripped — catching a drifting stream with
 * more evidence *before* the error budget is blown.
 */

#ifndef GENREUSE_CORE_DRIFT_H
#define GENREUSE_CORE_DRIFT_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace genreuse {

namespace metrics {
class Gauge;
} // namespace metrics

/** Tuning for the Page–Hinkley change detector. */
struct PageHinkleyConfig
{
    /** Tolerated per-observation deviation above the running mean;
     *  in-distribution jitter below δ accumulates no evidence. */
    double delta = 0.05;

    /** Cumulative evidence threshold: trip when m_T − min m exceeds
     *  λ. Larger λ = slower but surer detection. */
    double lambda = 0.5;

    /** Observations before the test may trip (the running mean needs
     *  a few samples to settle). */
    size_t warmup = 8;
};

/**
 * One-sided Page–Hinkley test for an upward mean shift. Latched: once
 * tripped it stays tripped until reset(), because the guard's
 * response (boosted verification) should persist while the stream is
 * suspect, not flicker per observation.
 */
class PageHinkley
{
  public:
    explicit PageHinkley(PageHinkleyConfig cfg = {}) : cfg_(cfg) {}

    /** Feed one observation; true exactly when this one trips. */
    bool observe(double x);

    bool tripped() const { return tripped_; }

    /** Current evidence m_T − min m (what trips against λ). */
    double statistic() const { return mT_ - minMT_; }

    /** Running mean x̄_t (0 before any observation). */
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }

    size_t count() const { return n_; }

    void reset();

    const PageHinkleyConfig &config() const { return cfg_; }

  private:
    PageHinkleyConfig cfg_;
    size_t n_ = 0;
    double sum_ = 0.0;
    double mT_ = 0.0;
    double minMT_ = 0.0;
    bool tripped_ = false;
};

/** Tuning for one drift-watched signal. */
struct DriftConfig
{
    /** Master switch; a disabled detector observes nothing. */
    bool enabled = true;

    /** EWMA smoothing factor in (0, 1]; 1 = no smoothing. */
    double ewmaAlpha = 0.2;

    PageHinkleyConfig ph;
};

/**
 * EWMA + Page–Hinkley over one named scalar signal, wired into the
 * metrics registry and the event journal. Not thread-safe: each
 * guarded algorithm owns its detectors, and forwards through one
 * algorithm are already externally serialized.
 */
class DriftDetector
{
  public:
    DriftDetector(std::string signal, DriftConfig cfg = {});

    /**
     * Feed one per-forward observation: updates the EWMA and the PH
     * test, mirrors both into gauges, journals a Drift event. Returns
     * true exactly when this observation trips the detector. No-op
     * (false) when disabled.
     */
    bool observe(double x);

    /** Latched trip state (sticks until reset()). */
    bool drifted() const { return ph_.tripped(); }

    /** Smoothed signal (0 before any observation). */
    double ewma() const { return ewma_; }

    /** Current PH evidence. */
    double statistic() const { return ph_.statistic(); }

    size_t observations() const { return ph_.count(); }

    /** Clear EWMA + PH state (config and registration kept). */
    void reset();

    const std::string &signal() const { return signal_; }
    const DriftConfig &config() const { return cfg_; }

  private:
    std::string signal_;
    DriftConfig cfg_;
    PageHinkley ph_;
    double ewma_ = 0.0;
    bool haveEwma_ = false;
    uint16_t tag_ = 0;          //!< interned signal name for events
    metrics::Gauge *ewmaGauge_; //!< pre-resolved registry handles
    metrics::Gauge *phGauge_;
};

} // namespace genreuse

#endif // GENREUSE_CORE_DRIFT_H
