#include "adaptive.h"

#include <algorithm>

#include "common/logging.h"
#include "common/table.h"
#include "lsh/clustering.h"

namespace genreuse {

AdaptiveReuseConvAlgo::AdaptiveReuseConvAlgo(
    std::shared_ptr<ReuseConvAlgo> aggressive,
    std::shared_ptr<ReuseConvAlgo> conservative, double rt_threshold,
    size_t probe_rows, size_t probe_hashes, uint64_t seed)
    : aggressive_(std::move(aggressive)),
      conservative_(std::move(conservative)),
      rtThreshold_(rt_threshold),
      probeRows_(probe_rows),
      probeHashes_(probe_hashes),
      seed_(seed)
{
    GENREUSE_REQUIRE(aggressive_ != nullptr,
                     "adaptive algo needs an aggressive strategy");
    GENREUSE_REQUIRE(aggressive_->fitted(),
                     "aggressive strategy must be fitted");
    GENREUSE_REQUIRE(!conservative_ || conservative_->fitted(),
                     "conservative strategy must be fitted");
}

double
AdaptiveReuseConvAlgo::probeRedundancy(const Tensor &x,
                                       const ConvGeometry &geom,
                                       CostLedger *ledger) const
{
    const size_t tile = geom.kernelH * geom.kernelW;
    const size_t n = x.shape().rows();
    const size_t rows = std::min(probeRows_, n);
    const size_t stride = std::max<size_t>(1, n / rows);

    // Subsample rows; probe the first tile-width panel (one channel's
    // kernel window) — enough signal to rank inputs by redundancy.
    Tensor probe({rows, tile});
    for (size_t r = 0; r < rows; ++r) {
        const float *src = x.data() + (r * stride) * x.shape().cols();
        std::copy(src, src + tile, probe.data() + r * tile);
    }
    Rng rng(seed_);
    HashFamily family = HashFamily::random(probeHashes_, tile, rng);
    StridedItems items{probe.data(), rows, tile, tile, 1};
    ClusterResult clusters = clusterBySignature(items, family);

    if (ledger) {
        OpCounts ops;
        ops.macs = family.hashMacs(rows);
        ops.tableOps = rows;
        ops.elemMoves = rows * tile;
        ledger->add(Stage::Clustering, ops);
    }
    return clusters.redundancyRatio();
}

Tensor
AdaptiveReuseConvAlgo::multiply(const Tensor &x, const Tensor &w,
                                const ConvGeometry &geom,
                                CostLedger *ledger)
{
    lastProbeRt_ = probeRedundancy(x, geom, ledger);
    lastAggressive_ = lastProbeRt_ >= rtThreshold_;
    if (lastAggressive_)
        return aggressive_->multiply(x, w, geom, ledger);
    if (conservative_)
        return conservative_->multiply(x, w, geom, ledger);
    return exact_.multiply(x, w, geom, ledger);
}

std::string
AdaptiveReuseConvAlgo::describe() const
{
    std::string fallback =
        conservative_ ? conservative_->describe() : "exact";
    return "adaptive[rt>=" + formatDouble(rtThreshold_, 2) + " -> " +
           aggressive_->describe() + ", else " + fallback + "]";
}

} // namespace genreuse
