/**
 * @file
 * Runtime reuse guard with a graceful-degradation ladder. The analytic
 * accuracy bound (§4.1) is a *selection-time* promise made on sample
 * data; this guard checks the promise at *run* time by measuring the
 * reconstruction error of each forward on a few sampled rows and, when
 * the measurement blows past the bound-derived budget, walks down a
 * ladder instead of silently returning garbage:
 *
 *   rung 0  full reuse          — measured error within budget
 *   rung 1  re-cluster          — refit the hash families with fresh
 *                                 (seed-stepped) parameters and retry
 *   rung 2  exact im2col GEMM   — bit-identical to the ExactConvAlgo
 *                                 baseline, always safe
 *
 * The same ladder handles recoverable runtime failures: non-finite
 * activations, a Status-returning reuse kernel, and deploy-time memory
 * misfits (MemoryEstimate::fits() failing downgrades the layer to the
 * exact strategy instead of aborting the deployment).
 *
 * Every guard decision is counted in a process-wide registry
 * (guard::snapshot / guard::toJson, schema genreuse.guard/1) and the
 * verification work is charged to the layer's cost ledger, so fallback
 * cost is priced by the MCU cost model and lands in BENCH_*.json.
 */

#ifndef GENREUSE_CORE_GUARD_H
#define GENREUSE_CORE_GUARD_H

#include <memory>
#include <string>

#include "drift.h"
#include "mcu/memory_model.h"
#include "reuse_conv.h"

namespace genreuse {

/** The degradation ladder, best rung first. */
enum class GuardRung
{
    FullReuse,     //!< reuse output accepted as-is
    Recluster,     //!< accepted after refitting with fresh hashes
    ExactFallback, //!< exact im2col GEMM result returned
};

/** Short name for reports ("full_reuse", "recluster", "exact"). */
const char *rungName(GuardRung r);

/** Tunables of the runtime guard. */
struct GuardConfig
{
    /**
     * Error budget = marginFactor x K x per-row bound x N, where K is
     * the panel count (the rigorous Cauchy-Schwarz scaling, see
     * accuracy_model.h) and the per-row bound comes from the fit
     * sample. The margin absorbs the bound's sample-vs-runtime
     * looseness; values well past it signal distribution drift.
     */
    double marginFactor = 8.0;

    /** Rows re-computed exactly per forward to measure the error. */
    size_t sampleRows = 8;

    /** Re-cluster attempts before falling back to exact GEMM. */
    size_t maxReclusters = 1;

    /** Seed increment per re-cluster (fresh hash parameters). */
    uint64_t reclusterSeedStep = 0x9E3779B9u;

    /** When false the guard is pass-through: one branch per forward. */
    bool enabled = true;

    /**
     * Drift telemetry (src/core/drift.h): EWMA + Page–Hinkley over the
     * per-forward error/budget ratio ("error_ratio"). It rises when
     * the input distribution leaves the fitted one, well before the
     * error budget itself is blown. drift.enabled turns *both*
     * watchers off (it is the master switch for observeDrift()).
     */
    DriftConfig drift;

    /**
     * Separate tuning for the structural watcher over the realized
     * centroid fraction n_c/n ("cluster_ratio"). Cluster counts jitter
     * far more per forward than the error ratio does, so the two
     * signals need independent delta/lambda; defaults are the stock
     * DriftConfig (coarser than a tuned error watcher).
     */
    DriftConfig clusterDrift;

    /** Verification-row multiplier applied while a drift detector is
     *  tripped: sustained drift buys more evidence per forward
     *  *before* the budget trips, instead of after. */
    size_t driftSampleBoost = 4;

    /** Cap on boosted verification rows (0 = uncapped). */
    size_t maxSampleRows = 64;
};

/** Counters of every guard decision since the last reset. */
struct GuardStats
{
    uint64_t forwards = 0;         //!< guarded multiplies executed
    uint64_t fullReuse = 0;        //!< rung-0 acceptances
    uint64_t reclusters = 0;       //!< re-cluster attempts
    uint64_t reclusterWins = 0;    //!< rung-1 acceptances
    uint64_t exactFallbacks = 0;   //!< rung-2 executions
    uint64_t nonFiniteInputs = 0;  //!< NaN/Inf activations detected
    uint64_t statusErrors = 0;     //!< kernels returning a !ok Status
    uint64_t kernelFallbacks = 0;  //!< per-panel exact fallbacks inside
                                   //!< reuse kernels (corrupt tables)
    uint64_t deployDowngrades = 0; //!< deploy-time memory downgrades
    uint64_t driftTrips = 0;       //!< drift-detector trips (either signal)
    uint64_t unverifiedForwards = 0; //!< forwards accepted without
                                     //!< verification (overload level 2)

    double lastMeasuredError = 0.0; //!< est. total sq. Frobenius error
    double lastErrorBudget = 0.0;   //!< budget it was compared against
    double worstMargin = 0.0;       //!< max measured/budget ratio seen
    GuardRung lastRung = GuardRung::FullReuse;

    bool
    empty() const
    {
        return forwards == 0 && kernelFallbacks == 0 &&
               deployDowngrades == 0;
    }
};

namespace guard {

/** Record one guarded forward's outcome. */
void recordForward(GuardRung rung, double measured, double budget);

/** Count a re-cluster attempt / a non-finite input / a kernel Status
 *  error (each also shows up in the rung taken via recordForward). */
void noteRecluster();
void noteNonFiniteInput();
void noteStatusError();

/** Record a per-panel exact fallback inside a reuse kernel. @p kernel
 *  names the kernel ("vertical", "horizontal", "fc") for the warn. */
void noteKernelFallback(const char *kernel);

/** Record a deploy-time downgrade to the exact strategy. */
void noteDeployDowngrade();

/** Record a drift-detector trip (counts toward GuardStats). */
void noteDriftTrip();

/** Record a forward accepted unverified because the overload
 *  controller is at the shed-verification level. */
void noteUnverified();

/** Copy of the process-wide counters. */
GuardStats snapshot();

/** Zero the counters (tests, bench reruns). */
void reset();

/** Schema-versioned JSON (genreuse.guard/1) of the counters. */
std::string toJson();

} // namespace guard

/**
 * Overwrite a deterministic, seeded subset of @p t's elements with NaN
 * — the nan_activation fault payload, also handy for drift tests.
 * Corrupts max(1, size/64) elements.
 */
void corruptWithNan(Tensor &t, uint64_t seed);

/**
 * Scale every element of @p t by a seeded factor in [16, 64) — the
 * ood_scale fault payload: finite activations far outside the fit
 * distribution, so the error budget (or, when verification is shed,
 * the accuracy canary) is what must catch them.
 */
void corruptWithScale(Tensor &t, uint64_t seed);

/**
 * Deploy-time rung for a memory estimate: FullReuse when the estimate
 * fits the board, ExactFallback (with a warn naming the failing
 * component and shortfall from FitReport::describe()) when it does
 * not. Callers downgrade the layer instead of aborting deployment.
 */
GuardRung deployRung(const MemoryEstimate &est, const McuSpec &spec);

/**
 * A ConvAlgo that wraps ReuseConvAlgo with the degradation ladder.
 * Drop-in for Conv2D::setAlgo() exactly like the unguarded algorithm;
 * the exact fallback output is bit-identical to ExactConvAlgo.
 */
class GuardedReuseConvAlgo : public ConvAlgo
{
  public:
    GuardedReuseConvAlgo(ReusePattern pattern, GuardConfig config,
                         HashMode mode = HashMode::Learned,
                         uint64_t seed = 99);

    /**
     * Fit the inner reuse algorithm and retain a profiling subsample
     * of @p sample_default_x for the error budget and for re-cluster
     * refits.
     */
    void fit(const Tensor &sample_default_x, const ConvGeometry &geom);

    Tensor multiply(const Tensor &x, const Tensor &w,
                    const ConvGeometry &geom, CostLedger *ledger) override;

    /**
     * multiply() writing into @p y (resized in place, capacity reused).
     * The steady-state rung-0 path — reuse accepted within budget —
     * performs no heap allocation: the inner algorithm writes @p y
     * directly, verification rows live in the stream arena, and the
     * input is only copied when a fault injection must corrupt it.
     */
    void multiplyInto(const Tensor &x, const Tensor &w,
                      const ConvGeometry &geom, CostLedger *ledger,
                      Tensor &y);

    /**
     * multiplyInto() with an explicit stream context: the guard state
     * consulted and updated (drift detectors, cached budget, last
     * rung) is @p ctx's own, so one guarded algorithm tracks each
     * stream's distribution independently — a drifting stream boosts
     * its *own* verification and trips its *own* ladder. NOTE unlike
     * the unguarded algorithm, a *guarded* algo is not safe to share
     * across concurrently executing streams: the re-cluster rung
     * refits the shared inner fit. The serve engine gives each stream
     * its own guarded instance.
     */
    void multiplyInto(StreamContext &ctx, const Tensor &x, const Tensor &w,
                      const ConvGeometry &geom, CostLedger *ledger,
                      Tensor &y);

    std::string describe() const override;

    /** Rung the calling stream's most recent multiply() resolved at. */
    GuardRung lastRung() const;

    /** The wrapped reuse algorithm (for stats introspection). */
    ReuseConvAlgo &inner() { return *inner_; }
    const ReuseConvAlgo &inner() const { return *inner_; }

    const GuardConfig &config() const { return config_; }

    /** Drift watcher over the calling stream's per-forward
     *  error/budget ratio. Signal names carry the stream id
     *  ("error_ratio" on the thread-default stream, "error_ratio.s<id>"
     *  on serve streams) so gauges stay distinguishable. */
    DriftDetector &errorDrift();
    const DriftDetector &errorDrift() const;

    /** Drift watcher over the calling stream's realized centroid
     *  fraction n_c/n. */
    DriftDetector &clusterDrift();
    const DriftDetector &clusterDrift() const;

    /** True while either of the calling stream's detectors is tripped. */
    bool drifted() const;

    /** Rows the calling stream's next measureError() will verify —
     *  sampleRows, boosted by driftSampleBoost (capped at
     *  maxSampleRows) while drifted. */
    size_t verifyRows() const;

  private:
    GuardStreamState &state(StreamContext &ctx) const;
    double errorBudget(GuardStreamState &st, const Tensor &w,
                       const ConvGeometry &geom, size_t runtime_rows);
    double measureError(const Tensor &x, const Tensor &w,
                        const Tensor &y, CostLedger *ledger) const;

    /**
     * measureError() generalized: recompute @p rows evenly strided
     * rows exactly and return the estimated total squared Frobenius
     * error (scaled to the full batch). When @p exact_norm_sq_out is
     * non-null it receives the equally scaled squared norm of the
     * exact rows, so the caller can form a *relative* error — the
     * accuracy canary's unit, stable across activation scales.
     */
    double measureErrorRows(const Tensor &x, const Tensor &w,
                            const Tensor &y, size_t rows,
                            CostLedger *ledger,
                            double *exact_norm_sq_out) const;

    /**
     * Accuracy-canary hook, called on every forward that returns a
     * *reuse* output (including unverified overload-level-2 forwards —
     * the canary is exempt from shedding by design: it is the only
     * accuracy signal left up there). Samples per canary::rate() via
     * the stream's deterministic credit, shadow-measures the relative
     * error on the exact path, feeds the stream's error drift
     * detector, and journals CanarySample/CanaryBreach.
     */
    void maybeCanary(GuardStreamState &st, const Tensor &x,
                     const Tensor &w, const ConvGeometry &geom,
                     const Tensor &y, CostLedger *ledger);
    void observeDrift(GuardStreamState &st, double measured,
                      double budget);

    std::unique_ptr<ReuseConvAlgo> inner_;
    ExactConvAlgo exact_;
    GuardConfig config_;

    Tensor fitSample_;      //!< profiling subsample, default layout
    ConvGeometry fitGeom_{};
};

/**
 * Convenience mirroring applyReusePattern(): build, fit and install a
 * guarded reuse algorithm on a conv layer.
 */
std::shared_ptr<GuardedReuseConvAlgo> applyGuardedReusePattern(
    Conv2D &layer, const ReusePattern &pattern,
    const Tensor &sample_default_x, const ConvGeometry &geom,
    GuardConfig config = {}, HashMode mode = HashMode::Learned,
    uint64_t seed = 99);

} // namespace genreuse

#endif // GENREUSE_CORE_GUARD_H
