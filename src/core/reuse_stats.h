/**
 * @file
 * Statistics reported by one reuse multiplication — the quantities the
 * paper's analytic latency model consumes (§4.2): neuron vector count
 * n, centroid count n_c, and the resulting redundancy ratio r_t.
 */

#ifndef GENREUSE_CORE_REUSE_STATS_H
#define GENREUSE_CORE_REUSE_STATS_H

#include <cstddef>

namespace genreuse {

/** Aggregated over all panels of one reuse GEMM. */
struct ReuseStats
{
    size_t totalVectors = 0;   //!< n = N x K (vectors across panels)
    size_t totalCentroids = 0; //!< n_c
    size_t numPanels = 0;      //!< K (vertical slices or row bands)
    size_t exactMacs = 0;      //!< N * Din * Dout of the exact GEMM
    size_t reuseMacs = 0;      //!< hashing + centroid GEMM MACs

    /** r_t = 1 - n_c / n. */
    double
    redundancyRatio() const
    {
        if (totalVectors == 0)
            return 0.0;
        return 1.0 - static_cast<double>(totalCentroids) /
                     static_cast<double>(totalVectors);
    }

    /** MAC reduction factor of reuse over the exact GEMM. */
    double
    macReduction() const
    {
        if (reuseMacs == 0)
            return 1.0;
        return static_cast<double>(exactMacs) /
               static_cast<double>(reuseMacs);
    }

    ReuseStats &
    operator+=(const ReuseStats &o)
    {
        totalVectors += o.totalVectors;
        totalCentroids += o.totalCentroids;
        numPanels += o.numPanels;
        exactMacs += o.exactMacs;
        reuseMacs += o.reuseMacs;
        return *this;
    }
};

} // namespace genreuse

#endif // GENREUSE_CORE_REUSE_STATS_H
