#include "pattern_space.h"

#include <algorithm>

#include "common/logging.h"

namespace genreuse {

namespace {

/** Divisors of n no smaller than lo, capped to at most max_count. */
std::vector<size_t>
divisorsAtLeast(size_t n, size_t lo, size_t max_count)
{
    std::vector<size_t> out;
    for (size_t d = lo; d <= n && out.size() < max_count; ++d)
        if (n % d == 0)
            out.push_back(d);
    return out;
}

} // namespace

std::vector<size_t>
verticalGranularities(const ConvGeometry &geom)
{
    const size_t din = geom.cols();
    const size_t tile = geom.kernelH * geom.kernelW;
    std::vector<size_t> out;
    // The conventional unit: one kernel tile in one channel.
    out.push_back(std::min(tile, din));
    // Whole-pixel unit: all channels of one kernel position (C2 order).
    if (geom.inChannels > 1 && geom.inChannels <= din)
        out.push_back(geom.inChannels);
    // Fractions of Din.
    for (size_t frac : {8, 4, 2}) {
        size_t l = din / frac;
        if (l >= 4)
            out.push_back(l);
    }
    out.push_back(din); // single slice
    // Deduplicate, keep sorted.
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::vector<size_t>
horizontalGranularities(const ConvGeometry &geom)
{
    // Bands aligned to whole output rows keep memory views coherent.
    const size_t pix = geom.outHeight() * geom.outWidth();
    std::vector<size_t> out;
    for (size_t d : divisorsAtLeast(pix, std::max<size_t>(4, pix / 16), 3))
        out.push_back(d);
    out.push_back(pix);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

PatternScope
PatternScope::defaultScope(const ConvGeometry &geom)
{
    PatternScope s;
    s.columnOrders = {ColumnOrder::ChannelMajor, ColumnOrder::PixelMajor};
    s.rowOrders = {RowOrder::BatchMajor};
    s.directions = {ReuseDirection::Vertical, ReuseDirection::Horizontal};
    s.granularities = verticalGranularities(geom);
    for (size_t g : horizontalGranularities(geom))
        s.granularities.push_back(g);
    std::sort(s.granularities.begin(), s.granularities.end());
    s.granularities.erase(
        std::unique(s.granularities.begin(), s.granularities.end()),
        s.granularities.end());
    s.blockRows = {1, 2};
    s.hashCounts = {2, 3, 4, 6};
    return s;
}

PatternScope
PatternScope::smallScope(const ConvGeometry &geom)
{
    PatternScope s;
    s.columnOrders = {ColumnOrder::ChannelMajor, ColumnOrder::PixelMajor};
    s.rowOrders = {RowOrder::BatchMajor};
    s.directions = {ReuseDirection::Vertical, ReuseDirection::Horizontal};
    s.granularities = {geom.kernelH * geom.kernelW, geom.cols()};
    s.blockRows = {1};
    s.hashCounts = {3};
    return s;
}

std::vector<ReusePattern>
enumeratePatterns(const PatternScope &scope, const ConvGeometry &geom)
{
    std::vector<ReusePattern> out;
    for (ColumnOrder co : scope.columnOrders) {
        for (RowOrder ro : scope.rowOrders) {
            for (ReuseDirection dir : scope.directions) {
                for (size_t l : scope.granularities) {
                    for (size_t br : scope.blockRows) {
                        if (dir == ReuseDirection::Horizontal && br != 1)
                            continue; // blocks are vertical-only
                        for (size_t h : scope.hashCounts) {
                            ReusePattern p;
                            p.columnOrder = co;
                            p.rowOrder = ro;
                            p.direction = dir;
                            p.granularity = l;
                            p.blockRows = br;
                            p.numHashes = h;
                            if (p.validFor(geom))
                                out.push_back(p);
                        }
                    }
                }
            }
        }
    }
    return out;
}

} // namespace genreuse
