#include "measurement.h"

#include "common/logging.h"
#include "common/profiler.h"
#include "guard.h"
#include "nn/loss.h"

namespace genreuse {

Measurement
measureNetwork(Network &net, const Dataset &eval, const CostModel &model,
               size_t max_images)
{
    const size_t n =
        max_images == 0 ? eval.size() : std::min(max_images, eval.size());
    GENREUSE_REQUIRE(n > 0, "empty evaluation set");
    profiler::ProfSpan pspan("measure.network");

    CostLedger conv_ledger;
    net.setConvLedger(&conv_ledger);

    size_t correct = 0;
    ReuseStats last_stats;
    for (size_t i = 0; i < n; ++i) {
        Tensor x = eval.gatherImages({i});
        Tensor logits = net.forward(x, /*training=*/false);
        size_t best = 0;
        for (size_t c = 1; c < logits.shape().cols(); ++c)
            if (logits.at2(0, c) > logits.at2(0, best))
                best = c;
        if (eval.labels[i] >= 0 &&
            best == static_cast<size_t>(eval.labels[i])) {
            correct++;
        }
        // Keep the last conv's reuse stats if one is installed —
        // looking through the guard wrapper when present.
        for (auto *conv : net.convLayers()) {
            auto *reuse = dynamic_cast<ReuseConvAlgo *>(&conv->algo());
            if (!reuse) {
                auto *guarded =
                    dynamic_cast<GuardedReuseConvAlgo *>(&conv->algo());
                if (guarded)
                    reuse = &guarded->inner();
            }
            if (reuse)
                last_stats = reuse->lastStats();
        }
    }
    net.setConvLedger(nullptr);

    Measurement m;
    m.accuracy = static_cast<double>(correct) / static_cast<double>(n);
    m.stats = last_stats;

    // Average the conv ledger over images. OpCounts are integral;
    // divide at the milliseconds level to avoid rounding.
    m.convMs = conv_ledger.totalMs(model) / static_cast<double>(n);
    CostLedger aux = net.staticAuxCost(eval.sampleShape());
    m.perImageMs = m.convMs + aux.totalMs(model);

    // Scale a copy of the ledger to per-image op counts for reporting.
    m.perImageConvLedger = CostLedger{};
    for (size_t s = 0; s < static_cast<size_t>(Stage::NumStages); ++s) {
        Stage stage = static_cast<Stage>(s);
        OpCounts ops = conv_ledger.stage(stage);
        ops.macs /= n;
        ops.elemMoves /= n;
        ops.aluOps /= n;
        ops.tableOps /= n;
        m.perImageConvLedger.add(stage, ops);
    }
    return m;
}

std::shared_ptr<ReuseConvAlgo>
fitAndInstall(Network &net, Conv2D &layer, const ReusePattern &pattern,
              const Dataset &fit_sample, HashMode mode, uint64_t seed)
{
    GENREUSE_REQUIRE(fit_sample.size() > 0, "empty fitting sample");
    // Make sure the layer runs its exact path while capturing im2col.
    layer.resetAlgo();
    Tensor x = fit_sample.gatherImages([&] {
        std::vector<size_t> idx(fit_sample.size());
        for (size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        return idx;
    }());
    net.forward(x, /*training=*/false);

    auto algo = std::make_shared<ReuseConvAlgo>(pattern, mode, seed);
    algo->fit(layer.lastIm2col(), layer.lastGeometry());
    layer.setAlgo(algo);
    return algo;
}

std::shared_ptr<GuardedReuseConvAlgo>
fitAndInstallGuarded(Network &net, Conv2D &layer,
                     const ReusePattern &pattern,
                     const Dataset &fit_sample, GuardConfig config,
                     HashMode mode, uint64_t seed)
{
    GENREUSE_REQUIRE(fit_sample.size() > 0, "empty fitting sample");
    layer.resetAlgo();
    Tensor x = fit_sample.gatherImages([&] {
        std::vector<size_t> idx(fit_sample.size());
        for (size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        return idx;
    }());
    net.forward(x, /*training=*/false);

    auto algo = std::make_shared<GuardedReuseConvAlgo>(pattern, config,
                                                       mode, seed);
    algo->fit(layer.lastIm2col(), layer.lastGeometry());
    layer.setAlgo(algo);
    return algo;
}

void
resetAllConvs(Network &net)
{
    for (auto *conv : net.convLayers())
        conv->resetAlgo();
}

} // namespace genreuse
