/**
 * @file
 * Reuse-efficacy audit: the running, per-layer/per-stream view of the
 * paper's central bet — that fit-time models (redundancy ratio r_t for
 * latency, the squared-Frobenius bound for accuracy) keep predicting
 * what the runtime actually does. Everything observed so far (op
 * ledgers, spans, request traces) measures *cost*; this module
 * measures *efficacy*:
 *
 *  - observed redundancy ratio per layer/stream (last value, EWMA
 *    window, lifetime mean) against the fit-time modeled r_t, so
 *    model/runtime reconciliation is a number, not an assumption;
 *  - cluster-count and centroid-occupancy histograms (HdrHistogram,
 *    the same mergeable buckets the serve latencies use) fed by every
 *    clustering call — the observability ROADMAP item 3 (shared
 *    cluster-table cache) needs before it can be built honestly;
 *  - reorder/copy traffic per layer (the transformation/recovery
 *    element moves the paper charges against reuse wins);
 *  - guard error-budget burn fraction (measured/budget) per layer.
 *
 * Design mirrors trace/faultpoint/eventlog: off by default, the
 * hot-path gate is ONE inlined relaxed atomic load per hook
 * (BM_AuditGateDisabled pins this), armed via audit::setEnabled() or
 * GENREUSE_AUDIT=1. When armed, hooks take a registry mutex and update
 * pre-grown slots — steady state performs no heap allocation (the
 * zero-alloc arena test runs with the audit armed).
 *
 * Exports: toJson() (schema "genreuse.audit/1", also embedded in BENCH
 * records), a "audit" pull source on the telemetry exporter, and a few
 * global metrics gauges for timelines.
 */

#ifndef GENREUSE_CORE_REUSE_AUDIT_H
#define GENREUSE_CORE_REUSE_AUDIT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/hdrhist.h"
#include "reuse_stats.h"

namespace genreuse {
namespace audit {

/** Kernel kinds for the per-kind invocation counters (matches the
 *  KernelReuse event's a8 convention). */
enum class Kernel : uint8_t { Vertical = 0, Horizontal = 1, Fc = 2 };

namespace detail {
extern std::atomic<bool> g_enabled;
void recordForwardSlow(const void *owner, const ReuseStats &stats);
void recordKernelSlow(Kernel kind, const ReuseStats &local);
void recordClusteringSlow(size_t items, size_t clusters,
                          const size_t *sizes);
void recordTrafficSlow(const void *owner, uint64_t reorder_elems,
                       uint64_t copy_elems);
void recordBudgetSlow(const void *owner, double measured, double budget);
bool suppressed();
} // namespace detail

/** The hot-path gate: one relaxed atomic load. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Arm/disarm the audit. Arming registers the "audit" telemetry pull
 *  source (idempotent); disarming unregisters it. */
void setEnabled(bool on);

/** One layer/stream audit slot (a snapshot copy). */
struct LayerAudit
{
    std::string name;    //!< setName()/eventlog tag, may be empty
    uint16_t stream = 0; //!< streamtag at record time (0 = default)

    uint64_t forwards = 0;
    double lastObserved = 0.0; //!< redundancy ratio of the last forward
    double ewmaObserved = 0.0; //!< windowed view (EWMA, alpha = 0.2)
    double sumObserved = 0.0;  //!< lifetime mean = sumObserved/forwards
    uint64_t vectors = 0;      //!< total clustered vectors
    uint64_t centroids = 0;    //!< total centroids produced

    bool hasModeled = false;
    double modeled = 0.0; //!< fit-time modeled r_t (setModeled)

    uint64_t reorderElems = 0; //!< input/weight reorder element moves
    uint64_t copyElems = 0;    //!< recovery/unpermute element moves

    uint64_t burnSamples = 0; //!< guard verifications with a budget
    double burnSum = 0.0;     //!< Σ measured/budget
    double burnMax = 0.0;     //!< worst burn fraction seen

    double meanObserved() const
    {
        return forwards ? sumObserved / static_cast<double>(forwards)
                        : 0.0;
    }
    double meanBurn() const
    {
        return burnSamples ? burnSum / static_cast<double>(burnSamples)
                           : 0.0;
    }
    /** |observed − modeled| reconciliation gap (0 when no model). */
    double modelGap() const
    {
        if (!hasModeled || forwards == 0)
            return 0.0;
        const double g = meanObserved() - modeled;
        return g < 0 ? -g : g;
    }
};

/** Per-kernel-kind invocation counters (a snapshot copy). */
struct KernelAudit
{
    uint64_t invocations = 0;
    uint64_t vectors = 0;
    uint64_t centroids = 0;
};

/** Whole-audit snapshot. */
struct Snapshot
{
    std::vector<LayerAudit> layers;
    KernelAudit kernels[3]; //!< index = Kernel
    uint64_t clusterings = 0;
    HdrHistogram::Snapshot clusterCountHist; //!< clusters per call
    HdrHistogram::Snapshot occupancyHist;    //!< items per cluster
};

// ---- hooks (inline-gated; one relaxed load when disarmed) ----------

/** One layer forward's aggregate reuse statistics (reuse_conv /
 *  reuse_dense call this with their per-forward ReuseStats). */
inline void
recordForward(const void *owner, const ReuseStats &stats)
{
    if (!enabled())
        return;
    detail::recordForwardSlow(owner, stats);
}

/** One reuse-kernel invocation (vertical/horizontal/fc). */
inline void
recordKernel(Kernel kind, const ReuseStats &local)
{
    if (!enabled())
        return;
    detail::recordKernelSlow(kind, local);
}

/** One clustering call: @p sizes is the per-cluster item count array
 *  (length @p clusters) feeding the occupancy histogram. */
inline void
recordClustering(size_t items, size_t clusters, const size_t *sizes)
{
    if (!enabled())
        return;
    detail::recordClusteringSlow(items, clusters, sizes);
}

/** Reorder (transform) and copy (recover) traffic in elements. */
inline void
recordTraffic(const void *owner, uint64_t reorder_elems,
              uint64_t copy_elems)
{
    if (!enabled())
        return;
    detail::recordTrafficSlow(owner, reorder_elems, copy_elems);
}

/** One guard verification's budget burn (measured vs budget). */
inline void
recordBudget(const void *owner, double measured, double budget)
{
    if (!enabled())
        return;
    detail::recordBudgetSlow(owner, measured, budget);
}

// ---- fit-time model registration -----------------------------------

/** Record the fit-time modeled redundancy ratio for @p owner (the
 *  fitted algo). Applies to every stream's slot for that owner. */
void setModeled(const void *owner, double modeled_rt);

/** Display name for @p owner's slots in exports (layer name). */
void setName(const void *owner, const std::string &name);

/** The name registered for @p owner ("" when none). The canary shares
 *  the audit's owner keying and borrows its names. */
std::string nameOf(const void *owner);

/** RAII hook suppression for the calling thread: fit-time model
 *  profiling runs the real kernels, which must not count as observed
 *  runtime statistics. */
class Suppress
{
  public:
    Suppress();
    ~Suppress();
    Suppress(const Suppress &) = delete;
    Suppress &operator=(const Suppress &) = delete;
};

// ---- exports -------------------------------------------------------

Snapshot snapshot();

/** Drop all audit state (slots, histograms, names). Test/bench setup
 *  only; not meant to race active recorders. */
void reset();

/** Schema-versioned JSON export (schema "genreuse.audit/1"). */
std::string toJson();

/** Compact one-line JSON for the telemetry pull source. */
std::string telemetryJson();

} // namespace audit
} // namespace genreuse

#endif // GENREUSE_CORE_REUSE_AUDIT_H
