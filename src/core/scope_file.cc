#include "scope_file.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace genreuse {

namespace {

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        std::string tok = trim(s.substr(pos, comma - pos));
        if (!tok.empty())
            out.push_back(tok);
        pos = comma + 1;
    }
    return out;
}

size_t
parseCount(const std::string &tok, const char *what)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    GENREUSE_REQUIRE(end != nullptr && *end == '\0' && !tok.empty(),
                     "bad ", what, " value '", tok, "' in scope file");
    return static_cast<size_t>(v);
}

ColumnOrder
parseColumnOrder(const std::string &tok)
{
    if (tok == "C1")
        return ColumnOrder::ChannelMajor;
    if (tok == "C2")
        return ColumnOrder::PixelMajor;
    if (tok == "C3")
        return ColumnOrder::KwMajor;
    fatal("unknown column order '", tok, "' in scope file (C1|C2|C3)");
}

RowOrder
parseRowOrder(const std::string &tok)
{
    if (tok == "R1")
        return RowOrder::BatchMajor;
    if (tok == "R2")
        return RowOrder::PixelMajor;
    fatal("unknown row order '", tok, "' in scope file (R1|R2)");
}

ReuseDirection
parseDirection(const std::string &tok)
{
    if (tok == "M-1")
        return ReuseDirection::Vertical;
    if (tok == "M-2")
        return ReuseDirection::Horizontal;
    fatal("unknown direction '", tok, "' in scope file (M-1|M-2)");
}

} // namespace

PatternScope
parseScope(std::istream &is, const PatternScope &base)
{
    PatternScope scope = base;
    std::string line;
    size_t line_no = 0;
    while (std::getline(is, line)) {
        line_no++;
        // Strip comments.
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        size_t eq = line.find('=');
        GENREUSE_REQUIRE(eq != std::string::npos,
                         "scope file line ", line_no,
                         ": expected 'key = values'");
        std::string key = trim(line.substr(0, eq));
        std::vector<std::string> values = splitCsv(line.substr(eq + 1));
        GENREUSE_REQUIRE(!values.empty(), "scope file line ", line_no,
                         ": no values for '", key, "'");

        if (key == "orders") {
            scope.columnOrders.clear();
            for (const auto &v : values)
                scope.columnOrders.push_back(parseColumnOrder(v));
        } else if (key == "row_orders") {
            scope.rowOrders.clear();
            for (const auto &v : values)
                scope.rowOrders.push_back(parseRowOrder(v));
        } else if (key == "directions") {
            scope.directions.clear();
            for (const auto &v : values)
                scope.directions.push_back(parseDirection(v));
        } else if (key == "granularities") {
            scope.granularities.clear();
            for (const auto &v : values)
                scope.granularities.push_back(
                    parseCount(v, "granularity"));
        } else if (key == "block_rows") {
            scope.blockRows.clear();
            for (const auto &v : values)
                scope.blockRows.push_back(parseCount(v, "block_rows"));
        } else if (key == "hashes") {
            scope.hashCounts.clear();
            for (const auto &v : values)
                scope.hashCounts.push_back(parseCount(v, "hash count"));
        } else {
            fatal("scope file line ", line_no, ": unknown key '", key,
                  "'");
        }
    }
    return scope;
}

PatternScope
loadScopeFile(const std::string &path, const PatternScope &base)
{
    std::ifstream is(path);
    GENREUSE_REQUIRE(is.is_open(), "cannot open scope file ", path);
    return parseScope(is, base);
}

std::string
renderScope(const PatternScope &scope)
{
    std::ostringstream os;
    os << "# genreuse pattern scope (see §4.3 of the paper)\n";
    os << "orders = ";
    for (size_t i = 0; i < scope.columnOrders.size(); ++i)
        os << (i ? ", " : "") << toString(scope.columnOrders[i]);
    os << "\nrow_orders = ";
    for (size_t i = 0; i < scope.rowOrders.size(); ++i)
        os << (i ? ", " : "") << toString(scope.rowOrders[i]);
    os << "\ndirections = ";
    for (size_t i = 0; i < scope.directions.size(); ++i)
        os << (i ? ", " : "") << toString(scope.directions[i]);
    os << "\ngranularities = ";
    for (size_t i = 0; i < scope.granularities.size(); ++i)
        os << (i ? ", " : "") << scope.granularities[i];
    os << "\nblock_rows = ";
    for (size_t i = 0; i < scope.blockRows.size(); ++i)
        os << (i ? ", " : "") << scope.blockRows[i];
    os << "\nhashes = ";
    for (size_t i = 0; i < scope.hashCounts.size(); ++i)
        os << (i ? ", " : "") << scope.hashCounts[i];
    os << "\n";
    return os.str();
}

void
saveScopeFile(const std::string &path, const PatternScope &scope)
{
    std::ofstream os(path);
    GENREUSE_REQUIRE(os.is_open(), "cannot write scope file ", path);
    os << renderScope(scope);
    GENREUSE_REQUIRE(os.good(), "write failure on ", path);
}

} // namespace genreuse
