#include "latency_model.h"

#include "common/logging.h"
#include "reuse_conv.h"

namespace genreuse {

namespace {

/**
 * Bias add + fold back to activation layout, charged by Conv2D::forward
 * after the strategy's multiply. Both the exact and the reuse execution
 * pay it, so both predicted ledgers must include it — omitting it on
 * the reuse side (as an earlier revision did) makes predictions diverge
 * from what a traced forward() actually reports.
 */
OpCounts
biasFoldOps(const ConvGeometry &geom)
{
    OpCounts rc;
    rc.aluOps = geom.rows() * geom.outChannels;
    rc.elemMoves = geom.rows() * geom.outChannels;
    return rc;
}

} // namespace

double
LatencyEstimate::flopRatio(const ConvGeometry &geom) const
{
    const double h = static_cast<double>(pattern.numHashes);
    const double dout = static_cast<double>(geom.outChannels);
    return h / dout + (1.0 - redundancyRatio());
}

bool
LatencyEstimate::keyConditionHolds(const ConvGeometry &geom) const
{
    const double h = static_cast<double>(pattern.numHashes);
    const double dout = static_cast<double>(geom.outChannels);
    return h / dout < redundancyRatio();
}

double
LatencyEstimate::milliseconds(const CostModel &model) const
{
    return reuseLedger.totalMs(model);
}

double
LatencyEstimate::speedup(const CostModel &model) const
{
    // A zero-cost reuse ledger means this estimate never executed (a
    // default-constructed or corrupted LatencyEstimate): any real
    // estimate charges at least the im2col move cost. Returning a
    // neutral 1.0 here would let selection rank a broken candidate as
    // "no speedup" — surface the bug instead.
    const double reuse_ms = reuseLedger.totalMs(model);
    GENREUSE_REQUIRE(reuse_ms > 0.0,
                     "degenerate reuse ledger (0 ms) for pattern ",
                     pattern.describe(), ": speedup undefined");
    return exactLedger.totalMs(model) / reuse_ms;
}

CostLedger
exactConvLedger(const ConvGeometry &geom)
{
    CostLedger ledger;
    OpCounts tf;
    tf.elemMoves = geom.rows() * geom.cols();
    ledger.add(Stage::Transformation, tf);
    OpCounts mm;
    mm.macs = geom.macs();
    ledger.add(Stage::Gemm, mm);
    ledger.add(Stage::Recovering, biasFoldOps(geom));
    return ledger;
}

LatencyEstimate
estimateLatency(const Tensor &sample_default_x, const Tensor &w,
                const ReusePattern &pattern, const ConvGeometry &geom,
                uint64_t seed)
{
    GENREUSE_REQUIRE(pattern.validFor(geom), "invalid pattern ",
                     pattern.describe());
    GENREUSE_REQUIRE(sample_default_x.shape().rows() == geom.rows(),
                     "profiling sample must match the geometry (use a "
                     "batch-1 im2col matrix)");
    LatencyEstimate est;
    est.pattern = pattern;
    est.exactLedger = exactConvLedger(geom);
    // The exact path's im2col move cost also applies before reuse's
    // reorder; charge it so reuse and exact latencies are comparable.
    OpCounts im2col_ops;
    im2col_ops.elemMoves = sample_default_x.size();
    est.reuseLedger.add(Stage::Transformation, im2col_ops);

    ReuseConvAlgo algo(pattern, HashMode::Random, seed);
    algo.fit(sample_default_x, geom);
    algo.multiply(sample_default_x, w, geom, &est.reuseLedger);
    est.reuseLedger.add(Stage::Recovering, biasFoldOps(geom));
    est.stats = algo.lastStats();
    return est;
}

LatencyEstimate
estimateLatencyReordered(const Tensor &xr, const Tensor &wr,
                         const ReusePattern &pattern,
                         const ConvGeometry &geom, uint64_t seed)
{
    GENREUSE_REQUIRE(pattern.validFor(geom), "invalid pattern ",
                     pattern.describe());
    GENREUSE_REQUIRE(xr.shape().rows() == geom.rows(),
                     "profiling sample must match the geometry (use a "
                     "batch-1 im2col matrix)");
    LatencyEstimate est;
    est.pattern = pattern;
    est.exactLedger = exactConvLedger(geom);
    OpCounts im2col_ops;
    im2col_ops.elemMoves = xr.size();
    est.reuseLedger.add(Stage::Transformation, im2col_ops);

    // Random-mode fitting uses only the sample's shape, which the
    // reorder preserves, so fitting on the reordered sample yields the
    // same families (and multiplyReordered the same ledger and stats)
    // as estimateLatency() on the default layout.
    ReuseConvAlgo algo(pattern, HashMode::Random, seed);
    algo.fit(xr, geom);
    algo.multiplyReordered(xr, wr, geom, &est.reuseLedger);
    est.reuseLedger.add(Stage::Recovering, biasFoldOps(geom));
    est.stats = algo.lastStats();
    return est;
}

LatencyEstimate
estimateLatencyFitted(ReuseConvAlgo &algo, const Tensor &sample_default_x,
                      const Tensor &w, const ConvGeometry &geom)
{
    GENREUSE_REQUIRE(algo.fitted(),
                     "estimateLatencyFitted needs a fitted algo");
    GENREUSE_REQUIRE(sample_default_x.shape().rows() == geom.rows(),
                     "sample must match the geometry (use a batch-1 "
                     "im2col matrix)");
    LatencyEstimate est;
    est.pattern = algo.pattern();
    est.exactLedger = exactConvLedger(geom);
    OpCounts im2col_ops;
    im2col_ops.elemMoves = sample_default_x.size();
    est.reuseLedger.add(Stage::Transformation, im2col_ops);
    algo.multiply(sample_default_x, w, geom, &est.reuseLedger);
    est.reuseLedger.add(Stage::Recovering, biasFoldOps(geom));
    est.stats = algo.lastStats();
    return est;
}

} // namespace genreuse
