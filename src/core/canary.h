/**
 * @file
 * Online accuracy canary: a sampled, always-on ground-truth check of
 * the reuse path. The guard's error budget is measured against a few
 * exactly recomputed rows *of the same forward* — but under overload
 * level 2 verification is shed entirely, and even when it runs, the
 * budget is an absolute Frobenius quantity whose meaning drifts with
 * activation scale. The canary closes both gaps: at a configured
 * sampling rate it re-runs a row subset of an accepted reuse output on
 * the bit-identical exact path, tracks the *relative* error per layer
 * and stream (EWMA + a Welford confidence interval), feeds the
 * existing DriftDetector, and journals CanarySample / CanaryBreach
 * eventlog events. Crucially it keeps sampling at overload level 2 —
 * the canary is the only accuracy signal left when verification is
 * shed, so it is exempt from shedding by design.
 *
 * Arming follows the trace/faultpoint idiom: GENREUSE_CANARY=<rate>
 * (a probability in (0, 1]) or canary::setRate(); the disarmed
 * hot-path cost is one inlined relaxed atomic load
 * (BM_CanaryGateDisabled pins it). Sampling is deterministic — a
 * per-stream credit accumulator, not an RNG — so a rate of 1.0 means
 * literally every forward and tests replay exactly.
 */

#ifndef GENREUSE_CORE_CANARY_H
#define GENREUSE_CORE_CANARY_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace genreuse {
namespace canary {

namespace detail {
// Sampling rate as a double bit-pattern; 0 (bit-pattern of +0.0) is
// the disarmed state the inline gate tests for.
extern std::atomic<uint64_t> g_rate_bits;
} // namespace detail

/** The hot-path gate: one relaxed atomic load. */
inline bool
enabled()
{
    return detail::g_rate_bits.load(std::memory_order_relaxed) != 0;
}

/** Current sampling rate (0.0 when disarmed). */
double rate();

/** Arm at @p rate forwards sampled per forward executed (clamped into
 *  [0, 1]; 0 disarms). GENREUSE_CANARY=<rate> does this before
 *  main(). */
void setRate(double rate);

/** One layer/stream canary series (a snapshot copy). */
struct CanaryStats
{
    std::string name;    //!< audit display name, may be empty
    uint16_t stream = 0;

    uint64_t samples = 0;  //!< canaried forwards
    uint64_t breaches = 0; //!< samples whose error exceeded the budget
    double lastError = 0.0;   //!< last measured relative error
    double ewmaError = 0.0;   //!< EWMA of relative error (alpha 0.2)
    double meanError = 0.0;   //!< Welford mean
    double errorCi95 = 0.0;   //!< 95% confidence half-width of the mean
    double worstError = 0.0;
};

/** Copies of every (layer, stream) series. */
std::vector<CanaryStats> snapshot();

/** Total samples / breaches across all series (cheap, for SLOs). */
uint64_t totalSamples();
uint64_t totalBreaches();

/** Drop all canary series (rate is left as-is). */
void reset();

/** Schema-versioned JSON export (schema "genreuse.canary/1"). */
std::string toJson();

/** Compact one-line JSON for the telemetry pull source. */
std::string telemetryJson();

namespace detail {
/**
 * Deterministic per-stream sampling decision: accumulate the rate and
 * fire when the credit crosses 1. @p credit is the caller's per-stream
 * accumulator (GuardStreamState::canaryCredit).
 */
inline bool
shouldSample(double &credit)
{
    credit += rate();
    if (credit < 1.0)
        return false;
    credit -= 1.0;
    return true;
}

void observeSlow(const void *owner, double rel_error, double rel_budget,
                 uint64_t rows, bool breach);
} // namespace detail

/**
 * Record one canary measurement for @p owner (same registry key as the
 * audit: the fitted algo). @p rel_error is the measured relative
 * error, @p rel_budget the relative budget it was judged against,
 * @p breach whether it exceeded it; journals CanarySample (and
 * CanaryBreach on a breach) and updates the per-layer series.
 */
inline void
observe(const void *owner, double rel_error, double rel_budget,
        uint64_t rows, bool breach)
{
    if (!enabled())
        return;
    detail::observeSlow(owner, rel_error, rel_budget, rows, breach);
}

} // namespace canary
} // namespace genreuse

#endif // GENREUSE_CORE_CANARY_H
