/**
 * @file
 * ReuseDense — a fully connected layer that runs segment reuse
 * (src/core/fc_reuse.h) at inference once fitted, and the exact path
 * during training. Completes the paper's §3.1 remark ("reuse can also
 * apply to fully connected layers") as a drop-in Layer, so a network
 * can be built with reuse on its FC head too — with the unfavorable
 * batch-1 economics the ablation_fc_reuse bench quantifies.
 */

#ifndef GENREUSE_CORE_REUSE_DENSE_H
#define GENREUSE_CORE_REUSE_DENSE_H

#include <memory>

#include "fc_reuse.h"
#include "guard.h"
#include "nn/dense.h"

namespace genreuse {

/** Dense layer with optional inference-time segment reuse. */
class ReuseDense : public Layer
{
  public:
    ReuseDense(std::string name, size_t in_features, size_t out_features,
               Rng &rng);

    /**
     * Fit the segment hash family from sample inputs and enable reuse.
     * @param sample N x inFeatures matrix of representative inputs
     * @param segment_len L (1 <= L <= inFeatures)
     * @param num_hashes H
     */
    void fitReuse(const Tensor &sample, size_t segment_len,
                  size_t num_hashes);

    /** Disable reuse; inference reverts to the exact product. */
    void disableReuse() { reuseEnabled_ = false; }

    bool reuseEnabled() const { return reuseEnabled_; }

    /** Statistics of the last reuse-mode forward. */
    const ReuseStats &lastStats() const { return lastStats_; }

    /** FullReuse normally; ExactFallback when the last reuse-mode
     *  forward hit non-finite activations and ran exactly. */
    GuardRung lastRung() const { return lastRung_; }

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override { return dense_.params(); }
    Shape outputShape(const Shape &in) const override
    {
        return dense_.outputShape(in);
    }
    void appendCost(const Shape &in, CostLedger &ledger) const override;

    /** Attach a cost ledger filled by reuse-mode forwards. */
    void setLedger(CostLedger *ledger) { ledger_ = ledger; }

    Dense &dense() { return dense_; }

  private:
    Dense dense_;
    bool reuseEnabled_ = false;
    size_t segmentLen_ = 0;
    std::unique_ptr<HashFamily> family_;
    CostLedger *ledger_ = nullptr;
    Tensor flat_; //!< flatten / fault-injection scratch, reused
    ReuseStats lastStats_;
    GuardRung lastRung_ = GuardRung::FullReuse;
};

} // namespace genreuse

#endif // GENREUSE_CORE_REUSE_DENSE_H
