#include "explorer.h"

#include "common/logging.h"
#include "common/profiler.h"
#include "reorder.h"

namespace genreuse {

namespace {

int
orderKey(ColumnOrder o)
{
    return static_cast<int>(o);
}

int
orderKey(RowOrder o)
{
    return static_cast<int>(o);
}

} // namespace

bool
usesCustomOrder(const ReusePattern &pattern)
{
    return pattern.columnOrder == ColumnOrder::Custom ||
           pattern.rowOrder == RowOrder::Custom;
}

ExplorationCache::ExplorationCache(Tensor sample_default_x, Tensor w,
                                   ConvGeometry geom)
    : sample_(std::move(sample_default_x)),
      profileBase_(profileRowSubsample(sample_)), w_(std::move(w)),
      geom_(geom)
{
}

const std::vector<uint32_t> &
ExplorationCache::columnPerm(const ReusePattern &p)
{
    GENREUSE_REQUIRE(!usesCustomOrder(p),
                     "custom orders cannot be memoized by order enum");
    const int key = orderKey(p.columnOrder);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = colPerms_.find(key);
    if (it == colPerms_.end())
        it = colPerms_.emplace(key, columnPermutation(p, geom_)).first;
    return it->second;
}

const Tensor &
ExplorationCache::profileSample(const ReusePattern &p)
{
    GENREUSE_REQUIRE(!usesCustomOrder(p),
                     "custom orders cannot be memoized by order enum");
    const int key = orderKey(p.columnOrder);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = profiles_.find(key);
    if (it == profiles_.end()) {
        const std::vector<uint32_t> col_perm = columnPermutation(p, geom_);
        Tensor xr = profileBase_;
        if (!isIdentity(col_perm)) {
            std::vector<uint32_t> id(profileBase_.shape().rows());
            for (size_t i = 0; i < id.size(); ++i)
                id[i] = static_cast<uint32_t>(i);
            xr = reorderMatrix(profileBase_, id, col_perm);
        }
        it = profiles_.emplace(key, std::move(xr)).first;
    }
    return it->second;
}

const Tensor &
ExplorationCache::fitSample(const ReusePattern &p)
{
    GENREUSE_REQUIRE(!usesCustomOrder(p),
                     "custom orders cannot be memoized by order enum");
    const int key = orderKey(p.columnOrder);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = fits_.find(key);
    if (it == fits_.end()) {
        const std::vector<uint32_t> col_perm = columnPermutation(p, geom_);
        Tensor xr = sample_;
        if (!isIdentity(col_perm)) {
            std::vector<uint32_t> id(sample_.shape().rows());
            for (size_t i = 0; i < id.size(); ++i)
                id[i] = static_cast<uint32_t>(i);
            xr = reorderMatrix(sample_, id, col_perm);
        }
        it = fits_.emplace(key, std::move(xr)).first;
    }
    return it->second;
}

const Tensor &
ExplorationCache::reorderedInput(const ReusePattern &p)
{
    GENREUSE_REQUIRE(!usesCustomOrder(p),
                     "custom orders cannot be memoized by order enum");
    const std::pair<int, int> key = {orderKey(p.columnOrder),
                                     orderKey(p.rowOrder)};
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = inputs_.find(key);
    if (it == inputs_.end()) {
        // Exactly the reorder ReuseConvAlgo::multiply() performs, so
        // multiplyReordered() on the cached view is bit-identical.
        const std::vector<uint32_t> col_perm = columnPermutation(p, geom_);
        const std::vector<uint32_t> row_perm = rowPermutation(p, geom_);
        const bool reorder_rows = !isIdentity(row_perm);
        const bool reorder_cols = !isIdentity(col_perm);
        Tensor xr = sample_;
        if (reorder_rows && reorder_cols) {
            xr = reorderMatrix(sample_, row_perm, col_perm);
        } else if (reorder_rows) {
            xr = permuteRows(sample_, row_perm);
        } else if (reorder_cols) {
            std::vector<uint32_t> id(sample_.shape().rows());
            for (size_t i = 0; i < id.size(); ++i)
                id[i] = static_cast<uint32_t>(i);
            xr = reorderMatrix(sample_, id, col_perm);
        }
        it = inputs_.emplace(key, std::move(xr)).first;
    }
    return it->second;
}

const Tensor &
ExplorationCache::reorderedWeights(const ReusePattern &p)
{
    GENREUSE_REQUIRE(!usesCustomOrder(p),
                     "custom orders cannot be memoized by order enum");
    const int key = orderKey(p.columnOrder);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = weights_.find(key);
    if (it == weights_.end()) {
        const std::vector<uint32_t> col_perm = columnPermutation(p, geom_);
        Tensor wr =
            isIdentity(col_perm) ? w_ : permuteRows(w_, col_perm);
        it = weights_.emplace(key, std::move(wr)).first;
    }
    return it->second;
}

size_t
ExplorationCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return colPerms_.size() + profiles_.size() + fits_.size() +
           weights_.size() + inputs_.size();
}

CandidateProfile
profileCandidate(const ReusePattern &pattern, ExplorationCache &cache,
                 uint64_t seed)
{
    // Runs on pool threads during profileCandidates(); each worker gets
    // its own timeline track, so the Chrome trace shows pool occupancy.
    profiler::ProfSpan span("explore.candidate");
    CandidateProfile prof;
    prof.pattern = pattern;
    if (usesCustomOrder(pattern)) {
        // Per-pattern permutations: evaluate through the uncached path.
        prof.accuracy =
            accuracyBound(cache.defaultSample(), cache.defaultWeights(),
                          pattern, cache.geometry(), seed);
        prof.latency =
            estimateLatency(cache.defaultSample(), cache.defaultWeights(),
                            pattern, cache.geometry(), seed);
        return prof;
    }
    prof.accuracy =
        accuracyBoundReordered(cache.profileSample(pattern),
                               cache.reorderedWeights(pattern), pattern,
                               cache.geometry(), seed);
    prof.latency =
        estimateLatencyReordered(cache.reorderedInput(pattern),
                                 cache.reorderedWeights(pattern), pattern,
                                 cache.geometry(), seed);
    return prof;
}

std::vector<CandidateProfile>
profileCandidates(const std::vector<ReusePattern> &candidates,
                  ExplorationCache &cache, uint64_t seed, ThreadPool &pool)
{
    std::vector<CandidateProfile> out(candidates.size());
    pool.parallelFor(candidates.size(), [&](size_t i) {
        out[i] = profileCandidate(candidates[i], cache, seed);
    });
    return out;
}

namespace {

bool
samePattern(const ReusePattern &a, const ReusePattern &b)
{
    return a.columnOrder == b.columnOrder && a.rowOrder == b.rowOrder &&
           a.direction == b.direction && a.granularity == b.granularity &&
           a.blockRows == b.blockRows && a.numHashes == b.numHashes &&
           a.customColumnPerm == b.customColumnPerm &&
           a.customRowPerm == b.customRowPerm;
}

bool
sameOps(const OpCounts &a, const OpCounts &b)
{
    return a.macs == b.macs && a.elemMoves == b.elemMoves &&
           a.aluOps == b.aluOps && a.tableOps == b.tableOps;
}

bool
sameLedger(const CostLedger &a, const CostLedger &b)
{
    for (size_t s = 0; s < static_cast<size_t>(Stage::NumStages); ++s)
        if (!sameOps(a.stage(static_cast<Stage>(s)),
                     b.stage(static_cast<Stage>(s))))
            return false;
    return true;
}

bool
sameStats(const ReuseStats &a, const ReuseStats &b)
{
    return a.totalVectors == b.totalVectors &&
           a.totalCentroids == b.totalCentroids &&
           a.numPanels == b.numPanels && a.exactMacs == b.exactMacs &&
           a.reuseMacs == b.reuseMacs;
}

} // namespace

bool
identicalResults(const SelectionResult &a, const SelectionResult &b)
{
    if (a.profiles.size() != b.profiles.size() ||
        a.promising != b.promising || a.paretoFront != b.paretoFront ||
        a.checked.size() != b.checked.size())
        return false;
    for (size_t i = 0; i < a.profiles.size(); ++i) {
        const CandidateProfile &pa = a.profiles[i];
        const CandidateProfile &pb = b.profiles[i];
        if (!samePattern(pa.pattern, pb.pattern))
            return false;
        if (pa.accuracy.bound != pb.accuracy.bound ||
            pa.accuracy.scatterTerm != pb.accuracy.scatterTerm ||
            pa.accuracy.weightTerm != pb.accuracy.weightTerm ||
            pa.accuracy.measuredError != pb.accuracy.measuredError)
            return false;
        if (!sameStats(pa.latency.stats, pb.latency.stats) ||
            !sameLedger(pa.latency.reuseLedger, pb.latency.reuseLedger) ||
            !sameLedger(pa.latency.exactLedger, pb.latency.exactLedger))
            return false;
    }
    for (size_t i = 0; i < a.checked.size(); ++i) {
        const CheckedPattern &ca = a.checked[i];
        const CheckedPattern &cb = b.checked[i];
        if (!samePattern(ca.pattern, cb.pattern) ||
            ca.accuracy != cb.accuracy || ca.latencyMs != cb.latencyMs ||
            ca.redundancyRatio != cb.redundancyRatio)
            return false;
    }
    return true;
}

} // namespace genreuse
