#include "horizontal_reuse.h"

#include <algorithm>
#include <cstring>

#include "common/arena.h"
#include "common/eventlog.h"
#include "common/logging.h"
#include "common/profiler.h"
#include "common/simd.h"
#include "guard.h"
#include "lsh/clustering.h"
#include "lsh/learned_hash.h"
#include "reuse_audit.h"
#include "stream_context.h"
#include "tensor/gemm.h"

namespace genreuse {

size_t
HorizontalSlicing::height(size_t i, size_t n) const
{
    const size_t start = i * bandHeight;
    return std::min(bandHeight, n - start);
}

HorizontalSlicing
HorizontalSlicing::plan(size_t n, size_t band_height)
{
    GENREUSE_REQUIRE(n > 0, "empty matrix");
    HorizontalSlicing s;
    s.bandHeight = band_height == 0 ? n : std::min(band_height, n);
    s.numBands = (n + s.bandHeight - 1) / s.bandHeight;
    return s;
}

Tensor
horizontalReuseMultiply(const Tensor &x, const Tensor &w,
                        const HorizontalSlicing &slicing,
                        const std::vector<HashFamily> &families,
                        OpLedger *ledger, ReuseStats *stats)
{
    Tensor y;
    horizontalReuseMultiplyInto(x, w, slicing, families, ledger, stats, y);
    return y;
}

void
horizontalReuseMultiplyInto(const Tensor &x, const Tensor &w,
                            const HorizontalSlicing &slicing,
                            const std::vector<HashFamily> &families,
                            OpLedger *ledger, ReuseStats *stats, Tensor &y)
{
    GENREUSE_REQUIRE(x.shape().rank() == 2 && w.shape().rank() == 2,
                     "reuse multiply expects matrices");
    const size_t n = x.shape().rows(), din = x.shape().cols();
    GENREUSE_REQUIRE(w.shape().rows() == din, "X/W inner dim mismatch");
    const size_t m = w.shape().cols();
    const bool shared_family = families.size() == 1;
    GENREUSE_REQUIRE(shared_family || families.size() == slicing.numBands,
                     "need 1 shared or per-band hash families");
    profiler::ProfSpan pspan("horizontal.reuse");

    y.resize({n, m}); // every band row range is fully written below
    ReuseStats local;
    local.exactMacs = n * din * m;

    const simd::Ops &simd_ops = simd::ops();
    Arena &arena = Arena::forCurrentStream();
    // Per-stream cluster scratch (see vertical_reuse.cc for why this
    // is context state, not thread_local).
    ClusterResult &clusters = StreamContext::current().clusterScratch(
        StreamContext::kHorizontal);

    for (size_t i = 0; i < slicing.numBands; ++i) {
        const size_t row0 = i * slicing.bandHeight;
        const size_t l = slicing.height(i, n);
        const HashFamily &family =
            shared_family ? families[0] : families[i];
        ArenaFrame frame(arena); // per-band scratch

        if (family.vectorLength() != l) {
            // Short trailing band (or mismatched family): exact GEMM.
            gemmRaw(x.data() + row0 * din, w.data(), y.data() + row0 * m,
                    l, m, din, din, m, m, false);
            local.reuseMacs += l * din * m;
            OpCounts mm;
            mm.macs = l * din * m;
            reportOps(ledger, Stage::Gemm, mm);
            continue;
        }

        // ---- cluster the band's columns ----------------------------
        StridedItems items;
        items.base = x.data() + row0 * din;
        items.count = din;
        items.length = l;
        items.itemStride = 1;
        items.elemStride = din;
        OpCounts cluster_ops;
        clusterBySignatureInto(items, family, clusters, &cluster_ops);
        if (!clusterTableValid(clusters)) {
            // Corrupted/degenerate table: never dereference it — run
            // the band exactly, like the short-band path above.
            guard::noteKernelFallback("horizontal");
            reportOps(ledger, Stage::Clustering, cluster_ops);
            local.reuseMacs += cluster_ops.macs;
            gemmRaw(x.data() + row0 * din, w.data(), y.data() + row0 * m,
                    l, m, din, din, m, m, false);
            local.reuseMacs += l * din * m;
            local.numPanels += 1;
            OpCounts mm;
            mm.macs = l * din * m;
            reportOps(ledger, Stage::Gemm, mm);
            continue;
        }
        const size_t nc = clusters.numClusters();
        local.totalVectors += din;
        local.totalCentroids += nc;
        local.numPanels += 1;

        local.reuseMacs += cluster_ops.macs;
        reportOps(ledger, Stage::Clustering, cluster_ops);

        // ---- build X_i^c (l x nc) and W_i^c (nc x m) ----------------
        float *xc = arena.allocSpan<float>(l * nc);
        float *wc = arena.allocSpan<float>(nc * m);
        {
            profiler::ProfSpan span("horizontal.recover");
            for (size_t c = 0; c < nc; ++c)
                for (size_t j = 0; j < l; ++j)
                    xc[j * nc + c] = clusters.centroids.at2(c, j);

            std::memset(wc, 0, nc * m * sizeof(float));
            for (size_t col = 0; col < din; ++col) {
                const float *wr = w.data() + col * m;
                simd_ops.addInto(wc + clusters.assignments[col] * m, wr, m);
            }
            OpCounts rc;
            rc.aluOps = din * m;    // weight sum-reduction
            rc.elemMoves = l * nc;  // centroid transpose
            reportOps(ledger, Stage::Recovering, rc);
        }

        // ---- band GEMM ----------------------------------------------
        profiler::ProfSpan gemm_span("horizontal.gemm");
        simd_ops.gemmF32(xc, wc, y.data() + row0 * m, l, m, nc, nc, m,
                         m, false);
        const size_t gemm_macs = l * nc * m;
        local.reuseMacs += gemm_macs;
        OpCounts band_mm;
        band_mm.macs = gemm_macs;
        reportOps(ledger, Stage::Gemm, band_mm);
    }

    if (eventlog::enabled())
        eventlog::record(eventlog::Type::KernelReuse, 0,
                         local.redundancyRatio(),
                         static_cast<double>(local.totalVectors), 0.0,
                         static_cast<uint32_t>(local.totalCentroids),
                         /*a8=*/1);
    audit::recordKernel(audit::Kernel::Horizontal, local);
    if (stats)
        *stats += local;
}

std::vector<HashFamily>
randomHorizontalFamilies(const HorizontalSlicing &slicing, size_t n,
                         size_t num_hashes, Rng &rng)
{
    std::vector<HashFamily> families;
    families.reserve(slicing.numBands);
    for (size_t i = 0; i < slicing.numBands; ++i) {
        families.push_back(
            HashFamily::random(num_hashes, slicing.height(i, n), rng));
    }
    return families;
}

std::vector<HashFamily>
learnedHorizontalFamilies(const Tensor &sample_x,
                          const HorizontalSlicing &slicing,
                          size_t num_hashes)
{
    const size_t n = sample_x.shape().rows();
    const size_t din = sample_x.shape().cols();
    std::vector<HashFamily> families;
    families.reserve(slicing.numBands);
    for (size_t i = 0; i < slicing.numBands; ++i) {
        const size_t row0 = i * slicing.bandHeight;
        const size_t l = slicing.height(i, n);
        StridedItems items;
        items.base = sample_x.data() + row0 * din;
        items.count = din;
        items.length = l;
        items.itemStride = 1;
        items.elemStride = din;
        families.push_back(learnHashFamilyPca(items, num_hashes));
    }
    return families;
}

} // namespace genreuse
