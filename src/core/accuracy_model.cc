#include "accuracy_model.h"

#include "common/logging.h"
#include "horizontal_reuse.h"
#include "lsh/clustering.h"
#include "reorder.h"
#include "reuse_conv.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "vertical_reuse.h"

namespace genreuse {

namespace {

/** ||W rows [row0, row0+count)||_F^2. */
double
weightSliceNormSq(const Tensor &w, size_t row0, size_t count)
{
    const size_t m = w.shape().cols();
    double s = 0.0;
    const float *base = w.data() + row0 * m;
    for (size_t i = 0; i < count * m; ++i)
        s += static_cast<double>(base[i]) * base[i];
    return s;
}

} // namespace

Tensor
profileRowSubsample(const Tensor &x)
{
    constexpr size_t kMaxProfileRows = 1024;
    const size_t full = x.shape().rows();
    if (full <= kMaxProfileRows)
        return x;
    const size_t din = x.shape().cols();
    const size_t stride = (full + kMaxProfileRows - 1) / kMaxProfileRows;
    const size_t rows = (full + stride - 1) / stride;
    Tensor subsampled({rows, din});
    for (size_t r = 0; r < rows; ++r) {
        const float *src = x.data() + r * stride * din;
        std::copy(src, src + din, subsampled.data() + r * din);
    }
    return subsampled;
}

AccuracyBound
accuracyBound(const Tensor &sample_default_x, const Tensor &w,
              const ReusePattern &pattern, const ConvGeometry &geom,
              uint64_t seed, bool measure)
{
    GENREUSE_REQUIRE(pattern.validFor(geom), "invalid pattern ",
                     pattern.describe());
    const size_t din = sample_default_x.shape().cols();
    GENREUSE_REQUIRE(w.shape().rows() == din, "weight shape mismatch");

    // Lightweight profiling subsamples large row populations: the
    // cluster statistics (λmax, m_i proportions) converge long before
    // the full im2col matrix is needed, and the bound only has to rank
    // patterns. Disabled when the caller wants the measured error.
    Tensor sample_x =
        measure ? sample_default_x : profileRowSubsample(sample_default_x);
    const size_t n = sample_x.shape().rows();

    // Reorder sample and weights per the pattern (rows of the sample
    // stay in place for the bound: cluster statistics are row-set
    // properties).
    std::vector<uint32_t> col_perm = columnPermutation(pattern, geom);
    Tensor xr = sample_x;
    Tensor wr = w;
    if (!isIdentity(col_perm)) {
        std::vector<uint32_t> id(n);
        for (size_t i = 0; i < n; ++i)
            id[i] = static_cast<uint32_t>(i);
        xr = reorderMatrix(sample_x, id, col_perm);
        wr = permuteRows(w, col_perm);
    }
    return accuracyBoundReordered(xr, wr, pattern, geom, seed, measure);
}

AccuracyBound
accuracyBoundReordered(const Tensor &xr, const Tensor &wr,
                       const ReusePattern &pattern, const ConvGeometry &geom,
                       uint64_t seed, bool measure)
{
    GENREUSE_REQUIRE(pattern.validFor(geom), "invalid pattern ",
                     pattern.describe());
    const size_t din = xr.shape().cols();
    GENREUSE_REQUIRE(wr.shape().rows() == din, "weight shape mismatch");
    const size_t n = xr.shape().rows();

    Rng rng(seed);
    AccuracyBound out;
    const size_t l = pattern.effectiveGranularity(geom);

    if (pattern.direction == ReuseDirection::Vertical) {
        VerticalSlicing slicing =
            VerticalSlicing::plan(din, l, pattern.blockRows);
        auto families = randomVerticalFamilies(slicing, din,
                                               pattern.numHashes, rng);
        const size_t r = slicing.blockRows;
        const size_t full_blocks = n / r;
        for (size_t k = 0; k < slicing.numSlices; ++k) {
            const size_t col0 = k * slicing.sliceWidth;
            const size_t width = slicing.width(k, din);
            double scatter = 0.0;
            if (r == 1) {
                StridedItems items;
                items.base = xr.data() + col0;
                items.count = n;
                items.length = width;
                items.itemStride = din;
                items.elemStride = 1;
                ClusterResult clusters =
                    clusterBySignature(items, families[k]);
                scatter = clusterScatterBound(items, clusters);
            } else {
                // Blocks: flatten r x width blocks into items.
                Tensor blocks({full_blocks, r * width});
                for (size_t b = 0; b < full_blocks; ++b)
                    for (size_t i = 0; i < r; ++i) {
                        const float *src =
                            xr.data() + (b * r + i) * din + col0;
                        std::copy(src, src + width,
                                  blocks.data() + b * r * width + i * width);
                    }
                StridedItems items;
                items.base = blocks.data();
                items.count = full_blocks;
                items.length = r * width;
                items.itemStride = r * width;
                items.elemStride = 1;
                ClusterResult clusters =
                    clusterBySignature(items, families[k]);
                scatter = clusterScatterBound(items, clusters);
            }
            double wk = weightSliceNormSq(wr, col0, width);
            out.scatterTerm += scatter;
            out.weightTerm += wk;
            out.bound += wk * scatter;
        }
        if (measure) {
            Tensor exact = matmul(xr, wr);
            ReuseStats stats;
            Tensor approx = verticalReuseMultiply(xr, wr, slicing, families,
                                                  nullptr, &stats);
            out.measuredError = squaredFrobeniusNorm(sub(exact, approx));
        }
    } else {
        HorizontalSlicing slicing = HorizontalSlicing::plan(n, l);
        auto families =
            randomHorizontalFamilies(slicing, n, pattern.numHashes, rng);
        const double w_norm = weightSliceNormSq(wr, 0, din);
        for (size_t i = 0; i < slicing.numBands; ++i) {
            const size_t row0 = i * slicing.bandHeight;
            const size_t bh = slicing.height(i, n);
            StridedItems items;
            items.base = xr.data() + row0 * din;
            items.count = din;
            items.length = bh;
            items.itemStride = 1;
            items.elemStride = din;
            ClusterResult clusters = clusterBySignature(items, families[i]);
            double scatter = clusterScatterBound(items, clusters);
            // Cauchy-Schwarz analog of the vertical bound: the band's
            // error Σ_j d_j w_j^T has squared Frobenius norm at most
            // (Σ_j ||d_j||^2)(Σ_j ||w_j||^2) <= scatter * ||W||_F^2.
            out.scatterTerm += scatter;
            out.bound += scatter * w_norm;
        }
        out.weightTerm = w_norm;
        if (measure) {
            Tensor exact = matmul(xr, wr);
            ReuseStats stats;
            Tensor approx = horizontalReuseMultiply(xr, wr, slicing,
                                                    families, nullptr,
                                                    &stats);
            out.measuredError = squaredFrobeniusNorm(sub(exact, approx));
        }
    }
    return out;
}

} // namespace genreuse
