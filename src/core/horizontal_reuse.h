/**
 * @file
 * Horizontal reuse GEMM (§3.4, Figure 7) — the new reuse direction this
 * paper introduces. Slice the *rows* of X into bands of height l;
 * within each band, cluster the Din *columns*; by distributivity,
 * similar columns a, b with weight rows w_j, w_k satisfy
 * a w_j + b w_k ≈ c (w_j + w_k) with c = (a + b) / 2, so the band's
 * output is (column centroids) x (sum-reduced weight rows). Band
 * outputs concatenate vertically.
 */

#ifndef GENREUSE_CORE_HORIZONTAL_REUSE_H
#define GENREUSE_CORE_HORIZONTAL_REUSE_H

#include <vector>

#include "lsh/lsh.h"
#include "mcu/cost_model.h"
#include "reuse_stats.h"
#include "tensor/tensor.h"

namespace genreuse {

/** Row banding plan for horizontal reuse. */
struct HorizontalSlicing
{
    size_t bandHeight = 0; //!< l
    size_t numBands = 0;

    /** Height of band i (the last band may be shorter). */
    size_t height(size_t i, size_t n) const;

    static HorizontalSlicing plan(size_t n, size_t band_height);
};

/**
 * Y = X x W approximated by horizontal reuse.
 *
 * @param x N x Din input matrix (already in the pattern's order)
 * @param w Din x M weight matrix (rows already matching x's columns)
 * @param slicing row banding plan
 * @param families one hash family per band; family i must accept
 *                 vectors of length height(i)
 * @param ledger optional op accounting; clustering counts are the
 *               actual ops reported by clusterBySignature
 * @param stats optional reuse statistics output
 */
Tensor horizontalReuseMultiply(const Tensor &x, const Tensor &w,
                               const HorizontalSlicing &slicing,
                               const std::vector<HashFamily> &families,
                               OpLedger *ledger, ReuseStats *stats);

/**
 * horizontalReuseMultiply() writing into @p y (resized in place,
 * capacity reused); band temporaries (X_i^c, W_i^c, signatures,
 * cluster tables) come from the stream arena / thread-local scratch,
 * so a steady-state call performs no heap allocation.
 */
void horizontalReuseMultiplyInto(const Tensor &x, const Tensor &w,
                                 const HorizontalSlicing &slicing,
                                 const std::vector<HashFamily> &families,
                                 OpLedger *ledger, ReuseStats *stats,
                                 Tensor &y);

/** Random hash families for a banding plan (lightweight profiling). */
std::vector<HashFamily> randomHorizontalFamilies(
    const HorizontalSlicing &slicing, size_t n, size_t num_hashes, Rng &rng);

/** PCA-learned hash families from a sample matrix. */
std::vector<HashFamily> learnedHorizontalFamilies(
    const Tensor &sample_x, const HorizontalSlicing &slicing,
    size_t num_hashes);

} // namespace genreuse

#endif // GENREUSE_CORE_HORIZONTAL_REUSE_H
