#include "reuse_audit.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "common/json.h"
#include "common/metrics.h"
#include "common/streamtag.h"
#include "common/telemetry.h"

namespace genreuse {
namespace audit {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

/** EWMA smoothing for the windowed observed-redundancy view. */
constexpr double kEwmaAlpha = 0.2;

/** Cluster histograms: counts and occupancies live in the thousands
 *  for real layers, so a small geometry (8 sub-buckets, values to
 *  2^20) keeps the footprint at ~1 KiB per histogram. */
constexpr uint32_t kHistSubBits = 3;
constexpr uint32_t kHistMaxBits = 20;

thread_local int t_suppress = 0;

/** One registry slot; the owner pointer is the fitted algo, so the
 *  guard (recording through inner()) and the algo itself land in the
 *  same slot. */
struct Entry
{
    const void *owner = nullptr;
    LayerAudit data;
};

struct Registry
{
    std::mutex mu;
    std::vector<Entry> entries;
    // Names/models arrive at fit time, usually before the first
    // recorded forward; kept keyed by owner so late-created stream
    // slots inherit them.
    std::vector<std::pair<const void *, std::string>> names;
    std::vector<std::pair<const void *, double>> modeled;
    uint64_t telemetryToken = 0;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

struct KernelSlot
{
    std::atomic<uint64_t> invocations{0};
    std::atomic<uint64_t> vectors{0};
    std::atomic<uint64_t> centroids{0};
};

KernelSlot g_kernels[3];
std::atomic<uint64_t> g_clusterings{0};

HdrHistogram &
clusterCountHist()
{
    static HdrHistogram h(kHistSubBits, kHistMaxBits);
    return h;
}

HdrHistogram &
occupancyHist()
{
    static HdrHistogram h(kHistSubBits, kHistMaxBits);
    return h;
}

/** Find or create the (owner, stream) slot. Caller holds r.mu. */
LayerAudit &
slotLocked(Registry &r, const void *owner, uint16_t stream)
{
    for (Entry &e : r.entries) {
        if (e.owner == owner && e.data.stream == stream)
            return e.data;
    }
    r.entries.emplace_back();
    Entry &e = r.entries.back();
    e.owner = owner;
    e.data.stream = stream;
    for (const auto &n : r.names) {
        if (n.first == owner)
            e.data.name = n.second;
    }
    for (const auto &m : r.modeled) {
        if (m.first == owner) {
            e.data.hasModeled = true;
            e.data.modeled = m.second;
        }
    }
    return e.data;
}

/** Arms the audit before main() when GENREUSE_AUDIT is a truthy
 *  value ("0" and "" stay off, anything else arms). */
struct EnvInit
{
    EnvInit()
    {
        const char *v = std::getenv("GENREUSE_AUDIT");
        if (v != nullptr && *v != '\0' &&
            !(v[0] == '0' && v[1] == '\0'))
            setEnabled(true);
    }
};

EnvInit g_env_init;

} // namespace

bool
suppressed()
{
    return t_suppress > 0;
}

void
recordForwardSlow(const void *owner, const ReuseStats &stats)
{
    if (suppressed() || stats.totalVectors == 0)
        return;
    const double r = stats.redundancyRatio();
    Registry &reg = registry();
    {
        std::lock_guard<std::mutex> lock(reg.mu);
        LayerAudit &a = slotLocked(reg, owner, streamtag::current());
        a.lastObserved = r;
        a.ewmaObserved = a.forwards == 0
                             ? r
                             : a.ewmaObserved +
                                   kEwmaAlpha * (r - a.ewmaObserved);
        a.sumObserved += r;
        ++a.forwards;
        a.vectors += stats.totalVectors;
        a.centroids += stats.totalCentroids;
    }
    // Global timeline view (the per-layer split lives in the JSON
    // exports); resolved once — the registry lookup heap-allocates.
    static metrics::Gauge &g_rt = metrics::gauge("audit.observed_rt");
    static metrics::Counter &g_fwd = metrics::counter("audit.forwards");
    g_rt.set(r);
    g_fwd.add();
}

void
recordKernelSlow(Kernel kind, const ReuseStats &local)
{
    if (suppressed())
        return;
    KernelSlot &k = g_kernels[static_cast<size_t>(kind)];
    k.invocations.fetch_add(1, std::memory_order_relaxed);
    k.vectors.fetch_add(local.totalVectors, std::memory_order_relaxed);
    k.centroids.fetch_add(local.totalCentroids,
                          std::memory_order_relaxed);
}

void
recordClusteringSlow(size_t items, size_t clusters, const size_t *sizes)
{
    if (suppressed())
        return;
    (void)items;
    g_clusterings.fetch_add(1, std::memory_order_relaxed);
    clusterCountHist().record(clusters);
    if (sizes != nullptr) {
        for (size_t i = 0; i < clusters; ++i)
            occupancyHist().record(sizes[i]);
    }
}

void
recordTrafficSlow(const void *owner, uint64_t reorder_elems,
                  uint64_t copy_elems)
{
    if (suppressed())
        return;
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    LayerAudit &a = slotLocked(reg, owner, streamtag::current());
    a.reorderElems += reorder_elems;
    a.copyElems += copy_elems;
}

void
recordBudgetSlow(const void *owner, double measured, double budget)
{
    if (suppressed() || budget <= 0.0)
        return;
    const double burn = measured / budget;
    Registry &reg = registry();
    {
        std::lock_guard<std::mutex> lock(reg.mu);
        LayerAudit &a = slotLocked(reg, owner, streamtag::current());
        ++a.burnSamples;
        a.burnSum += burn;
        a.burnMax = std::max(a.burnMax, burn);
    }
    static metrics::Gauge &g_burn = metrics::gauge("audit.burn");
    g_burn.set(burn);
}

} // namespace detail

void
setEnabled(bool on)
{
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    if (on && reg.telemetryToken == 0) {
        reg.telemetryToken =
            telemetry::registerSource("audit", telemetryJson);
    } else if (!on && reg.telemetryToken != 0) {
        // Flip the gate before blocking in unregisterSource so an
        // in-flight sample is the last one to see the audit armed.
        detail::g_enabled.store(false, std::memory_order_relaxed);
        const uint64_t token = reg.telemetryToken;
        reg.telemetryToken = 0;
        telemetry::unregisterSource(token);
        return;
    }
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void
setModeled(const void *owner, double modeled_rt)
{
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    bool found = false;
    for (auto &m : reg.modeled) {
        if (m.first == owner) {
            m.second = modeled_rt;
            found = true;
        }
    }
    if (!found)
        reg.modeled.emplace_back(owner, modeled_rt);
    for (auto &e : reg.entries) {
        if (e.owner == owner) {
            e.data.hasModeled = true;
            e.data.modeled = modeled_rt;
        }
    }
}

void
setName(const void *owner, const std::string &name)
{
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    bool found = false;
    for (auto &n : reg.names) {
        if (n.first == owner) {
            n.second = name;
            found = true;
        }
    }
    if (!found)
        reg.names.emplace_back(owner, name);
    for (auto &e : reg.entries) {
        if (e.owner == owner)
            e.data.name = name;
    }
}

std::string
nameOf(const void *owner)
{
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto &n : reg.names) {
        if (n.first == owner)
            return n.second;
    }
    return "";
}

Suppress::Suppress() { ++detail::t_suppress; }
Suppress::~Suppress() { --detail::t_suppress; }

Snapshot
snapshot()
{
    Snapshot s;
    detail::Registry &reg = detail::registry();
    {
        std::lock_guard<std::mutex> lock(reg.mu);
        s.layers.reserve(reg.entries.size());
        for (const detail::Entry &e : reg.entries)
            s.layers.push_back(e.data);
    }
    for (size_t i = 0; i < 3; ++i) {
        s.kernels[i].invocations =
            detail::g_kernels[i].invocations.load(
                std::memory_order_relaxed);
        s.kernels[i].vectors = detail::g_kernels[i].vectors.load(
            std::memory_order_relaxed);
        s.kernels[i].centroids = detail::g_kernels[i].centroids.load(
            std::memory_order_relaxed);
    }
    s.clusterings = detail::g_clusterings.load(std::memory_order_relaxed);
    s.clusterCountHist = detail::clusterCountHist().snapshot();
    s.occupancyHist = detail::occupancyHist().snapshot();
    return s;
}

void
reset()
{
    detail::Registry &reg = detail::registry();
    {
        std::lock_guard<std::mutex> lock(reg.mu);
        reg.entries.clear();
        reg.names.clear();
        reg.modeled.clear();
    }
    for (size_t i = 0; i < 3; ++i) {
        detail::g_kernels[i].invocations.store(0,
                                               std::memory_order_relaxed);
        detail::g_kernels[i].vectors.store(0, std::memory_order_relaxed);
        detail::g_kernels[i].centroids.store(0,
                                             std::memory_order_relaxed);
    }
    detail::g_clusterings.store(0, std::memory_order_relaxed);
    detail::clusterCountHist().reset();
    detail::occupancyHist().reset();
}

namespace {

const char *
kernelKey(size_t i)
{
    switch (i) {
      case 0:
        return "vertical";
      case 1:
        return "horizontal";
      default:
        return "fc";
    }
}

void
writeLayer(JsonWriter &w, const LayerAudit &a)
{
    w.beginObject();
    w.key("name").value(a.name);
    w.key("stream").value(static_cast<uint64_t>(a.stream));
    w.key("forwards").value(a.forwards);
    w.key("observed_rt_last").value(a.lastObserved);
    w.key("observed_rt_ewma").value(a.ewmaObserved);
    w.key("observed_rt_mean").value(a.meanObserved());
    if (a.hasModeled) {
        w.key("modeled_rt").value(a.modeled);
        w.key("model_gap").value(a.modelGap());
    }
    w.key("vectors").value(a.vectors);
    w.key("centroids").value(a.centroids);
    w.key("reorder_elems").value(a.reorderElems);
    w.key("copy_elems").value(a.copyElems);
    w.key("burn_samples").value(a.burnSamples);
    w.key("burn_mean").value(a.meanBurn());
    w.key("burn_max").value(a.burnMax);
    w.endObject();
}

void
writeHist(JsonWriter &w, const HdrHistogram::Snapshot &h)
{
    w.beginObject();
    w.key("count").value(h.count);
    w.key("mean").value(h.empty() ? 0.0 : h.mean());
    w.key("p50").value(h.valueAtPercentile(50.0));
    w.key("p90").value(h.valueAtPercentile(90.0));
    w.key("p99").value(h.valueAtPercentile(99.0));
    w.key("max").value(h.max);
    w.endObject();
}

std::string
render(bool compact)
{
    Snapshot s = snapshot();
    JsonWriter w(compact);
    w.beginObject();
    w.key("schema").value("genreuse.audit/1");
    w.key("enabled").value(enabled());
    w.key("layers").beginArray();
    for (const LayerAudit &a : s.layers)
        writeLayer(w, a);
    w.endArray();
    w.key("kernels").beginObject();
    for (size_t i = 0; i < 3; ++i) {
        w.key(kernelKey(i)).beginObject();
        w.key("invocations").value(s.kernels[i].invocations);
        w.key("vectors").value(s.kernels[i].vectors);
        w.key("centroids").value(s.kernels[i].centroids);
        w.endObject();
    }
    w.endObject();
    w.key("clusterings").value(s.clusterings);
    w.key("cluster_count").raw([&] {
        JsonWriter h(compact);
        writeHist(h, s.clusterCountHist);
        return h.str();
    }());
    w.key("occupancy").raw([&] {
        JsonWriter h(compact);
        writeHist(h, s.occupancyHist);
        return h.str();
    }());
    w.endObject();
    return w.str();
}

} // namespace

std::string
toJson()
{
    return render(false);
}

std::string
telemetryJson()
{
    return render(true);
}

} // namespace audit
} // namespace genreuse
