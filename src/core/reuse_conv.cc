#include "reuse_conv.h"

#include "common/logging.h"

namespace genreuse {

ReuseConvAlgo::ReuseConvAlgo(ReusePattern pattern, HashMode mode,
                             uint64_t seed)
    : pattern_(std::move(pattern)), mode_(mode), seed_(seed)
{
}

void
ReuseConvAlgo::fit(const Tensor &sample_default_x, const ConvGeometry &geom)
{
    GENREUSE_REQUIRE(pattern_.validFor(geom), "pattern ",
                     pattern_.describe(), " invalid for this geometry");
    GENREUSE_REQUIRE(sample_default_x.shape().rank() == 2 &&
                     sample_default_x.shape().cols() == geom.cols(),
                     "sample im2col shape mismatch");

    colPerm_ = columnPermutation(pattern_, geom);
    const size_t din = geom.cols();
    const size_t l = pattern_.effectiveGranularity(geom);

    // Reorder the sample the same way multiply() will reorder inputs
    // (the sample's rows keep their order: the clustering statistics
    // are permutation-invariant over rows of the sample).
    Tensor sample = sample_default_x;
    if (!isIdentity(colPerm_)) {
        std::vector<uint32_t> id(sample.shape().rows());
        for (size_t i = 0; i < id.size(); ++i)
            id[i] = static_cast<uint32_t>(i);
        sample = reorderMatrix(sample, id, colPerm_);
    }

    Rng rng(seed_);
    if (pattern_.direction == ReuseDirection::Vertical) {
        vslice_ = VerticalSlicing::plan(din, l, pattern_.blockRows);
        families_ =
            mode_ == HashMode::Random
                ? randomVerticalFamilies(vslice_, din, pattern_.numHashes,
                                         rng)
                : learnedVerticalFamilies(sample, vslice_,
                                          pattern_.numHashes);
    } else {
        hslice_ = HorizontalSlicing::plan(sample.shape().rows(), l);
        families_ =
            mode_ == HashMode::Random
                ? randomHorizontalFamilies(hslice_, sample.shape().rows(),
                                           pattern_.numHashes, rng)
                : learnedHorizontalFamilies(sample, hslice_,
                                            pattern_.numHashes);
    }
    fittedDin_ = din;
    fitted_ = true;
}

Tensor
ReuseConvAlgo::multiply(const Tensor &x, const Tensor &w,
                        const ConvGeometry &geom, CostLedger *ledger)
{
    GENREUSE_REQUIRE(fitted_, "ReuseConvAlgo::multiply before fit()");
    GENREUSE_REQUIRE(geom.cols() == fittedDin_,
                     "geometry changed since fit: Din ", geom.cols(),
                     " vs ", fittedDin_);

    const std::vector<uint32_t> row_perm = rowPermutation(pattern_, geom);
    const bool reorder_rows = !isIdentity(row_perm);
    const bool reorder_cols = !isIdentity(colPerm_);

    // Layout transformation of the input matrix. (The paper includes
    // reorder cost in all reported latencies; weight-row reordering is
    // free at runtime because weights are pre-permuted offline.)
    Tensor xr = x;
    if (reorder_rows || reorder_cols) {
        if (reorder_rows && reorder_cols) {
            xr = reorderMatrix(x, row_perm, colPerm_);
        } else if (reorder_rows) {
            xr = permuteRows(x, row_perm);
        } else {
            std::vector<uint32_t> id(x.shape().rows());
            for (size_t i = 0; i < id.size(); ++i)
                id[i] = static_cast<uint32_t>(i);
            xr = reorderMatrix(x, id, colPerm_);
        }
        if (ledger) {
            OpCounts tf;
            tf.elemMoves = x.size();
            ledger->add(Stage::Transformation, tf);
        }
    }
    Tensor wr = reorder_cols ? permuteRows(w, colPerm_) : w;

    lastStats_ = ReuseStats{};
    Tensor yr;
    if (pattern_.direction == ReuseDirection::Vertical) {
        yr = verticalReuseMultiply(xr, wr, vslice_, families_, ledger,
                                   &lastStats_);
    } else {
        HorizontalSlicing plan = HorizontalSlicing::plan(
            xr.shape().rows(), pattern_.effectiveGranularity(geom));
        if (families_.size() == plan.numBands) {
            yr = horizontalReuseMultiply(xr, wr, plan, families_, ledger,
                                         &lastStats_);
        } else {
            // Batch size differs from the fitting sample: all full
            // bands share the same height, so the first family covers
            // them (a short trailing band falls back to exact GEMM).
            std::vector<HashFamily> shared = {families_.front()};
            yr = horizontalReuseMultiply(xr, wr, plan, shared, ledger,
                                         &lastStats_);
        }
    }

    if (reorder_rows) {
        yr = unpermuteRows(yr, row_perm);
        if (ledger) {
            OpCounts rc;
            rc.elemMoves = yr.size();
            ledger->add(Stage::Recovering, rc);
        }
    }
    return yr;
}

std::string
ReuseConvAlgo::describe() const
{
    return std::string("reuse[") + pattern_.describe() + "|" +
           (mode_ == HashMode::Random ? "random" : "learned") + "]";
}

std::shared_ptr<ReuseConvAlgo>
applyReusePattern(Conv2D &layer, const ReusePattern &pattern,
                  const Tensor &sample_default_x, const ConvGeometry &geom,
                  HashMode mode, uint64_t seed)
{
    GENREUSE_REQUIRE(sample_default_x.shape().cols() == geom.cols(),
                     "sample does not match layer ", layer.name());
    auto algo = std::make_shared<ReuseConvAlgo>(pattern, mode, seed);
    algo->fit(sample_default_x, geom);
    layer.setAlgo(algo);
    return algo;
}

} // namespace genreuse
