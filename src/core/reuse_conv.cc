#include "reuse_conv.h"

#include "common/eventlog.h"
#include "common/logging.h"
#include "common/profiler.h"

namespace genreuse {

ReuseConvAlgo::ReuseConvAlgo(ReusePattern pattern, HashMode mode,
                             uint64_t seed)
    : pattern_(std::move(pattern)), mode_(mode), seed_(seed)
{
}

void
ReuseConvAlgo::fit(const Tensor &sample_default_x, const ConvGeometry &geom)
{
    GENREUSE_REQUIRE(pattern_.validFor(geom), "pattern ",
                     pattern_.describe(), " invalid for this geometry");
    GENREUSE_REQUIRE(sample_default_x.shape().rank() == 2 &&
                     sample_default_x.shape().cols() == geom.cols(),
                     "sample im2col shape mismatch");

    colPerm_ = columnPermutation(pattern_, geom);

    // Reorder the sample the same way multiply() will reorder inputs
    // (the sample's rows keep their order: the clustering statistics
    // are permutation-invariant over rows of the sample). Random mode
    // only uses the sample's shape, so the reorder is skipped there.
    Tensor sample = sample_default_x;
    if (mode_ == HashMode::Learned && !isIdentity(colPerm_)) {
        std::vector<uint32_t> id(sample.shape().rows());
        for (size_t i = 0; i < id.size(); ++i)
            id[i] = static_cast<uint32_t>(i);
        sample = reorderMatrix(sample, id, colPerm_);
    }
    fitFamilies(sample, geom);
}

void
ReuseConvAlgo::fitReordered(const Tensor &sample_reordered_x,
                            const ConvGeometry &geom)
{
    GENREUSE_REQUIRE(pattern_.validFor(geom), "pattern ",
                     pattern_.describe(), " invalid for this geometry");
    GENREUSE_REQUIRE(sample_reordered_x.shape().rank() == 2 &&
                     sample_reordered_x.shape().cols() == geom.cols(),
                     "sample im2col shape mismatch");
    colPerm_ = columnPermutation(pattern_, geom);
    fitFamilies(sample_reordered_x, geom);
}

void
ReuseConvAlgo::fitFamilies(const Tensor &sample, const ConvGeometry &geom)
{
    const size_t din = geom.cols();
    const size_t l = pattern_.effectiveGranularity(geom);

    Rng rng(seed_);
    if (pattern_.direction == ReuseDirection::Vertical) {
        vslice_ = VerticalSlicing::plan(din, l, pattern_.blockRows);
        families_ =
            mode_ == HashMode::Random
                ? randomVerticalFamilies(vslice_, din, pattern_.numHashes,
                                         rng)
                : learnedVerticalFamilies(sample, vslice_,
                                          pattern_.numHashes);
    } else {
        hslice_ = HorizontalSlicing::plan(sample.shape().rows(), l);
        families_ =
            mode_ == HashMode::Random
                ? randomHorizontalFamilies(hslice_, sample.shape().rows(),
                                           pattern_.numHashes, rng)
                : learnedHorizontalFamilies(sample, hslice_,
                                            pattern_.numHashes);
    }
    fittedDin_ = din;
    fitted_ = true;
}

Tensor
ReuseConvAlgo::multiply(const Tensor &x, const Tensor &w,
                        const ConvGeometry &geom, CostLedger *ledger)
{
    Expected<Tensor> y = tryMultiply(x, w, geom, ledger);
    if (!y.ok())
        panic(y.status().toString());
    return std::move(*y);
}

Expected<Tensor>
ReuseConvAlgo::tryMultiply(const Tensor &x, const Tensor &w,
                           const ConvGeometry &geom, CostLedger *ledger)
{
    if (!fitted_)
        return Status::error(ErrorCode::FailedPrecondition,
                             "ReuseConvAlgo::multiply before fit()");
    if (geom.cols() != fittedDin_)
        return Status::error(ErrorCode::InvalidArgument,
                             "geometry changed since fit: Din ",
                             geom.cols(), " vs ", fittedDin_);
    if (x.shape().rank() != 2 || w.shape().rank() != 2 ||
        x.shape().cols() != w.shape().rows() ||
        x.shape().cols() != geom.cols())
        return Status::error(ErrorCode::InvalidArgument,
                             "reuse GEMM shape mismatch: x ",
                             x.shape().toString(), " w ",
                             w.shape().toString(), " Din ", geom.cols());

    const std::vector<uint32_t> row_perm = rowPermutation(pattern_, geom);
    const bool reorder_rows = !isIdentity(row_perm);
    const bool reorder_cols = !isIdentity(colPerm_);

    // Layout transformation of the input matrix. (The paper includes
    // reorder cost in all reported latencies; weight-row reordering is
    // free at runtime because weights are pre-permuted offline.)
    Tensor xr = x;
    if (reorder_rows || reorder_cols) {
        profiler::ProfSpan span("reuse.transform");
        if (reorder_rows && reorder_cols) {
            xr = reorderMatrix(x, row_perm, colPerm_);
        } else if (reorder_rows) {
            xr = permuteRows(x, row_perm);
        } else {
            std::vector<uint32_t> id(x.shape().rows());
            for (size_t i = 0; i < id.size(); ++i)
                id[i] = static_cast<uint32_t>(i);
            xr = reorderMatrix(x, id, colPerm_);
        }
        OpCounts tf;
        tf.elemMoves = x.size();
        reportOps(ledger, Stage::Transformation, tf);
    }
    Tensor wr = reorder_cols ? permuteRows(w, colPerm_) : w;
    return reuseCore(xr, wr, row_perm, reorder_rows, geom, ledger);
}

Tensor
ReuseConvAlgo::multiplyReordered(const Tensor &xr, const Tensor &wr,
                                 const ConvGeometry &geom,
                                 CostLedger *ledger)
{
    GENREUSE_REQUIRE(fitted_, "ReuseConvAlgo::multiplyReordered before "
                              "fit()");
    GENREUSE_REQUIRE(geom.cols() == fittedDin_,
                     "geometry changed since fit: Din ", geom.cols(),
                     " vs ", fittedDin_);
    const std::vector<uint32_t> row_perm = rowPermutation(pattern_, geom);
    const bool reorder_rows = !isIdentity(row_perm);
    const bool reorder_cols = !isIdentity(colPerm_);
    // The caller supplied pre-reordered inputs; the transformation is
    // still charged (the paper includes reorder cost in every reported
    // latency), keeping ledgers identical to multiply().
    if (reorder_rows || reorder_cols) {
        OpCounts tf;
        tf.elemMoves = xr.size();
        reportOps(ledger, Stage::Transformation, tf);
    }
    return reuseCore(xr, wr, row_perm, reorder_rows, geom, ledger);
}

Tensor
ReuseConvAlgo::reuseCore(const Tensor &xr, const Tensor &wr,
                         const std::vector<uint32_t> &row_perm,
                         bool reorder_rows, const ConvGeometry &geom,
                         CostLedger *ledger)
{
    lastStats_ = ReuseStats{};
    Tensor yr;
    if (pattern_.direction == ReuseDirection::Vertical) {
        yr = verticalReuseMultiply(xr, wr, vslice_, families_, ledger,
                                   &lastStats_);
    } else {
        HorizontalSlicing plan = HorizontalSlicing::plan(
            xr.shape().rows(), pattern_.effectiveGranularity(geom));
        if (families_.size() == plan.numBands) {
            yr = horizontalReuseMultiply(xr, wr, plan, families_, ledger,
                                         &lastStats_);
        } else {
            yr = horizontalReuseMultiply(xr, wr, plan,
                                         remapFamilies(plan), ledger,
                                         &lastStats_);
        }
    }

    if (reorder_rows) {
        profiler::ProfSpan span("reuse.recover");
        yr = unpermuteRows(yr, row_perm);
        OpCounts rc;
        rc.elemMoves = yr.size();
        reportOps(ledger, Stage::Recovering, rc);
    }
    // One aggregated reuse event per layer forward, on top of the
    // per-kernel events: this is the granularity drift analysis and
    // the inspector's timeline work at.
    if (eventlog::enabled())
        eventlog::record(eventlog::Type::LayerReuse, 0,
                         lastStats_.redundancyRatio(),
                         static_cast<double>(lastStats_.totalVectors),
                         0.0,
                         static_cast<uint32_t>(lastStats_.totalCentroids));
    return yr;
}

std::vector<HashFamily>
ReuseConvAlgo::remapFamilies(const HorizontalSlicing &plan)
{
    // Batch size differs from the fitting sample, so the fitted band
    // count does not match the run's banding plan. All full bands
    // share the band height, so every fitted full-height family is
    // applicable: cycle them across the run's bands instead of
    // collapsing onto the first (which silently discarded the other
    // per-band fits). Bands with no matching family — the short
    // trailing band, or every band when the fit batch was smaller than
    // the granularity — fall back to exact GEMM inside
    // horizontalReuseMultiply.
    std::vector<const HashFamily *> full;
    for (const HashFamily &f : families_)
        if (f.vectorLength() == plan.bandHeight)
            full.push_back(&f);

    if (!warnedBandMismatch_) {
        warnedBandMismatch_ = true;
        if (full.empty()) {
            warn("horizontal reuse ", pattern_.describe(), ": fitted ",
                 families_.size(), " band(s) of height ",
                 families_.front().vectorLength(),
                 " but the run needs height ", plan.bandHeight,
                 "; all bands fall back to exact GEMM");
        } else {
            warn("horizontal reuse ", pattern_.describe(),
                 ": batch mismatch (fit ", families_.size(),
                 " bands, run ", plan.numBands, "); cycling ",
                 full.size(), " fitted full-height families");
        }
    }

    std::vector<HashFamily> mapped;
    mapped.reserve(plan.numBands);
    for (size_t i = 0; i < plan.numBands; ++i) {
        mapped.push_back(full.empty() ? families_.front()
                                      : *full[i % full.size()]);
    }
    return mapped;
}

std::string
ReuseConvAlgo::describe() const
{
    return std::string("reuse[") + pattern_.describe() + "|" +
           (mode_ == HashMode::Random ? "random" : "learned") + "]";
}

std::shared_ptr<ReuseConvAlgo>
applyReusePattern(Conv2D &layer, const ReusePattern &pattern,
                  const Tensor &sample_default_x, const ConvGeometry &geom,
                  HashMode mode, uint64_t seed)
{
    GENREUSE_REQUIRE(sample_default_x.shape().cols() == geom.cols(),
                     "sample does not match layer ", layer.name());
    auto algo = std::make_shared<ReuseConvAlgo>(pattern, mode, seed);
    algo->fit(sample_default_x, geom);
    layer.setAlgo(algo);
    return algo;
}

} // namespace genreuse
