#include "reuse_conv.h"

#include "common/eventlog.h"
#include "common/logging.h"
#include "common/profiler.h"
#include "reuse_audit.h"

namespace genreuse {

ReuseConvAlgo::ReuseConvAlgo(ReusePattern pattern, HashMode mode,
                             uint64_t seed)
    : pattern_(std::move(pattern)), mode_(mode), seed_(seed)
{
}

void
ReuseConvAlgo::fit(const Tensor &sample_default_x, const ConvGeometry &geom)
{
    GENREUSE_REQUIRE(pattern_.validFor(geom), "pattern ",
                     pattern_.describe(), " invalid for this geometry");
    GENREUSE_REQUIRE(sample_default_x.shape().rank() == 2 &&
                     sample_default_x.shape().cols() == geom.cols(),
                     "sample im2col shape mismatch");

    colPerm_ = columnPermutation(pattern_, geom);

    // Reorder the sample the same way multiply() will reorder inputs
    // (the sample's rows keep their order: the clustering statistics
    // are permutation-invariant over rows of the sample). Random mode
    // only uses the sample's shape, so both the reorder and the sample
    // copy are skipped there; Learned mode gathers the columns in
    // place on its one copy instead of materializing an identity row
    // permutation and a second matrix.
    if (mode_ == HashMode::Learned && !isIdentity(colPerm_)) {
        Tensor sample = sample_default_x;
        permuteColumnsInPlace(sample, colPerm_);
        fitFamilies(sample, geom);
    } else {
        fitFamilies(sample_default_x, geom);
    }
}

void
ReuseConvAlgo::fitReordered(const Tensor &sample_reordered_x,
                            const ConvGeometry &geom)
{
    GENREUSE_REQUIRE(pattern_.validFor(geom), "pattern ",
                     pattern_.describe(), " invalid for this geometry");
    GENREUSE_REQUIRE(sample_reordered_x.shape().rank() == 2 &&
                     sample_reordered_x.shape().cols() == geom.cols(),
                     "sample im2col shape mismatch");
    colPerm_ = columnPermutation(pattern_, geom);
    fitFamilies(sample_reordered_x, geom);
}

void
ReuseConvAlgo::fitFamilies(const Tensor &sample, const ConvGeometry &geom)
{
    const size_t din = geom.cols();
    const size_t l = pattern_.effectiveGranularity(geom);

    Rng rng(seed_);
    if (pattern_.direction == ReuseDirection::Vertical) {
        vslice_ = VerticalSlicing::plan(din, l, pattern_.blockRows);
        families_ =
            mode_ == HashMode::Random
                ? randomVerticalFamilies(vslice_, din, pattern_.numHashes,
                                         rng)
                : learnedVerticalFamilies(sample, vslice_,
                                          pattern_.numHashes);
    } else {
        hslice_ = HorizontalSlicing::plan(sample.shape().rows(), l);
        families_ =
            mode_ == HashMode::Random
                ? randomHorizontalFamilies(hslice_, sample.shape().rows(),
                                           pattern_.numHashes, rng)
                : learnedHorizontalFamilies(sample, hslice_,
                                            pattern_.numHashes);
    }
    fittedDin_ = din;
    fitted_ = true;
    // Refits (e.g. the guard's re-cluster rung) replace families_, so
    // every stream's band-remapped copies of the old families are
    // stale. Bumping the epoch invalidates them lazily: each stream's
    // scratch resets itself the next time that stream forwards.
    ++fitEpoch_;
}

ConvStreamScratch &
ReuseConvAlgo::scratch(StreamContext &ctx) const
{
    return ctx.convScratch(this, fitEpoch_);
}

const ReuseStats &
ReuseConvAlgo::lastStats() const
{
    return scratch(StreamContext::current()).lastStats;
}

Tensor
ReuseConvAlgo::multiply(const Tensor &x, const Tensor &w,
                        const ConvGeometry &geom, CostLedger *ledger)
{
    Tensor y;
    multiplyInto(x, w, geom, ledger, y);
    return y;
}

void
ReuseConvAlgo::multiplyInto(const Tensor &x, const Tensor &w,
                            const ConvGeometry &geom, CostLedger *ledger,
                            Tensor &y)
{
    Status s = tryMultiplyInto(x, w, geom, ledger, y);
    if (!s.ok())
        panic(s.toString());
}

void
ReuseConvAlgo::multiplyInto(StreamContext &ctx, const Tensor &x,
                            const Tensor &w, const ConvGeometry &geom,
                            CostLedger *ledger, Tensor &y)
{
    Status s = tryMultiplyInto(ctx, x, w, geom, ledger, y);
    if (!s.ok())
        panic(s.toString());
}

Expected<Tensor>
ReuseConvAlgo::tryMultiply(const Tensor &x, const Tensor &w,
                           const ConvGeometry &geom, CostLedger *ledger)
{
    Tensor y;
    Status s = tryMultiplyInto(x, w, geom, ledger, y);
    if (!s.ok())
        return s;
    return y;
}

Status
ReuseConvAlgo::tryMultiplyInto(const Tensor &x, const Tensor &w,
                               const ConvGeometry &geom, CostLedger *ledger,
                               Tensor &y)
{
    return tryMultiplyInto(StreamContext::current(), x, w, geom, ledger,
                           y);
}

Status
ReuseConvAlgo::tryMultiplyInto(StreamContext &ctx, const Tensor &x,
                               const Tensor &w, const ConvGeometry &geom,
                               CostLedger *ledger, Tensor &y)
{
    // Bind so every downstream current()/forCurrentStream() — the
    // kernels' cluster scratch, arena frames, event stream tags —
    // resolves to this stream for the duration of the forward.
    StreamContext::Bind bind(ctx);
    if (!fitted_)
        return Status::error(ErrorCode::FailedPrecondition,
                             "ReuseConvAlgo::multiply before fit()");
    if (geom.cols() != fittedDin_)
        return Status::error(ErrorCode::InvalidArgument,
                             "geometry changed since fit: Din ",
                             geom.cols(), " vs ", fittedDin_);
    if (x.shape().rank() != 2 || w.shape().rank() != 2 ||
        x.shape().cols() != w.shape().rows() ||
        x.shape().cols() != geom.cols())
        return Status::error(ErrorCode::InvalidArgument,
                             "reuse GEMM shape mismatch: x ",
                             x.shape().toString(), " w ",
                             w.shape().toString(), " Din ", geom.cols());

    ConvStreamScratch &sc = scratch(ctx);
    const std::vector<uint32_t> &row_perm = cachedRowPerm(sc, geom);
    const bool reorder_rows = !isIdentity(row_perm);
    const bool reorder_cols = !isIdentity(colPerm_);

    // Layout transformation of the input matrix, into the stream's
    // persistent scratch. (The paper includes reorder cost in all
    // reported latencies; weight-row reordering is free at runtime
    // because weights are pre-permuted offline — here sc.wr persists,
    // so the gather costs one pass and no allocation in steady state.)
    const Tensor *xin = &x;
    if (reorder_rows || reorder_cols) {
        profiler::ProfSpan span("reuse.transform");
        if (reorder_rows && reorder_cols) {
            reorderMatrixInto(x, row_perm, colPerm_, sc.xr);
        } else if (reorder_rows) {
            permuteRowsInto(x, row_perm, sc.xr);
        } else {
            // Column gather with implicit identity row order — no
            // identity permutation vector, no second pass.
            const size_t rows = x.shape().rows(), cols = x.shape().cols();
            sc.xr.resize({rows, cols});
            for (size_t r = 0; r < rows; ++r) {
                const float *src = x.data() + r * cols;
                float *dst = sc.xr.data() + r * cols;
                for (size_t c = 0; c < cols; ++c)
                    dst[c] = src[colPerm_[c]];
            }
        }
        xin = &sc.xr;
        OpCounts tf;
        tf.elemMoves = x.size();
        reportOps(ledger, Stage::Transformation, tf);
        audit::recordTraffic(this, tf.elemMoves, 0);
    }
    const Tensor *win = &w;
    if (reorder_cols) {
        permuteRowsInto(w, colPerm_, sc.wr);
        win = &sc.wr;
    }
    reuseCoreInto(sc, *xin, *win, row_perm, reorder_rows, geom, ledger, y);
    return Status();
}

Tensor
ReuseConvAlgo::multiplyReordered(const Tensor &xr, const Tensor &wr,
                                 const ConvGeometry &geom,
                                 CostLedger *ledger)
{
    GENREUSE_REQUIRE(fitted_, "ReuseConvAlgo::multiplyReordered before "
                              "fit()");
    GENREUSE_REQUIRE(geom.cols() == fittedDin_,
                     "geometry changed since fit: Din ", geom.cols(),
                     " vs ", fittedDin_);
    ConvStreamScratch &sc = scratch(StreamContext::current());
    const std::vector<uint32_t> &row_perm = cachedRowPerm(sc, geom);
    const bool reorder_rows = !isIdentity(row_perm);
    const bool reorder_cols = !isIdentity(colPerm_);
    // The caller supplied pre-reordered inputs; the transformation is
    // still charged (the paper includes reorder cost in every reported
    // latency), keeping ledgers identical to multiply().
    if (reorder_rows || reorder_cols) {
        OpCounts tf;
        tf.elemMoves = xr.size();
        reportOps(ledger, Stage::Transformation, tf);
        audit::recordTraffic(this, tf.elemMoves, 0);
    }
    Tensor y;
    reuseCoreInto(sc, xr, wr, row_perm, reorder_rows, geom, ledger, y);
    return y;
}

void
ReuseConvAlgo::reuseCoreInto(ConvStreamScratch &sc, const Tensor &xr,
                             const Tensor &wr,
                             const std::vector<uint32_t> &row_perm,
                             bool reorder_rows, const ConvGeometry &geom,
                             CostLedger *ledger, Tensor &y)
{
    sc.lastStats = ReuseStats{};
    // With a row reorder the kernel writes the permuted-order output
    // into the stream's scratch and the unpermute gathers into y;
    // without one the kernel writes y directly.
    Tensor &yr = reorder_rows ? sc.yTmp : y;
    if (pattern_.direction == ReuseDirection::Vertical) {
        verticalReuseMultiplyInto(xr, wr, vslice_, families_, ledger,
                                  &sc.lastStats, yr);
    } else {
        HorizontalSlicing plan = HorizontalSlicing::plan(
            xr.shape().rows(), pattern_.effectiveGranularity(geom));
        const std::vector<HashFamily> &fams =
            families_.size() == plan.numBands
                ? families_
                : remapFamiliesCached(sc, plan);
        horizontalReuseMultiplyInto(xr, wr, plan, fams, ledger,
                                    &sc.lastStats, yr);
    }

    if (reorder_rows) {
        profiler::ProfSpan span("reuse.recover");
        unpermuteRowsInto(sc.yTmp, row_perm, y);
        OpCounts rc;
        rc.elemMoves = y.size();
        reportOps(ledger, Stage::Recovering, rc);
        audit::recordTraffic(this, 0, rc.elemMoves);
    }
    // One aggregated reuse event per layer forward, on top of the
    // per-kernel events: this is the granularity drift analysis and
    // the inspector's timeline work at.
    if (eventlog::enabled())
        eventlog::record(eventlog::Type::LayerReuse, 0,
                         sc.lastStats.redundancyRatio(),
                         static_cast<double>(sc.lastStats.totalVectors),
                         0.0,
                         static_cast<uint32_t>(sc.lastStats.totalCentroids));
    audit::recordForward(this, sc.lastStats);
}

const std::vector<uint32_t> &
ReuseConvAlgo::cachedRowPerm(ConvStreamScratch &sc,
                             const ConvGeometry &geom)
{
    // (batch, rows) determines the permutation for every RowOrder:
    // pix = rows / batch, and Custom perms are validated against rows.
    if (sc.rowPermBatch != geom.batch || sc.rowPermRows != geom.rows()) {
        sc.rowPerm = rowPermutation(pattern_, geom);
        sc.rowPermBatch = geom.batch;
        sc.rowPermRows = geom.rows();
    }
    return sc.rowPerm;
}

const std::vector<HashFamily> &
ReuseConvAlgo::remapFamiliesCached(ConvStreamScratch &sc,
                                   const HorizontalSlicing &plan)
{
    if (sc.mappedNumBands != plan.numBands ||
        sc.mappedBandHeight != plan.bandHeight) {
        sc.mappedFamilies = remapFamilies(sc, plan);
        sc.mappedNumBands = plan.numBands;
        sc.mappedBandHeight = plan.bandHeight;
    }
    return sc.mappedFamilies;
}

std::vector<HashFamily>
ReuseConvAlgo::remapFamilies(ConvStreamScratch &sc,
                             const HorizontalSlicing &plan)
{
    // Batch size differs from the fitting sample, so the fitted band
    // count does not match the run's banding plan. All full bands
    // share the band height, so every fitted full-height family is
    // applicable: cycle them across the run's bands instead of
    // collapsing onto the first (which silently discarded the other
    // per-band fits). Bands with no matching family — the short
    // trailing band, or every band when the fit batch was smaller than
    // the granularity — fall back to exact GEMM inside
    // horizontalReuseMultiply.
    std::vector<const HashFamily *> full;
    for (const HashFamily &f : families_)
        if (f.vectorLength() == plan.bandHeight)
            full.push_back(&f);

    if (!sc.warnedBandMismatch) {
        sc.warnedBandMismatch = true;
        if (full.empty()) {
            warn("horizontal reuse ", pattern_.describe(), ": fitted ",
                 families_.size(), " band(s) of height ",
                 families_.front().vectorLength(),
                 " but the run needs height ", plan.bandHeight,
                 "; all bands fall back to exact GEMM");
        } else {
            warn("horizontal reuse ", pattern_.describe(),
                 ": batch mismatch (fit ", families_.size(),
                 " bands, run ", plan.numBands, "); cycling ",
                 full.size(), " fitted full-height families");
        }
    }

    std::vector<HashFamily> mapped;
    mapped.reserve(plan.numBands);
    for (size_t i = 0; i < plan.numBands; ++i) {
        mapped.push_back(full.empty() ? families_.front()
                                      : *full[i % full.size()]);
    }
    return mapped;
}

std::string
ReuseConvAlgo::describe() const
{
    return std::string("reuse[") + pattern_.describe() + "|" +
           (mode_ == HashMode::Random ? "random" : "learned") + "]";
}

std::shared_ptr<ReuseConvAlgo>
applyReusePattern(Conv2D &layer, const ReusePattern &pattern,
                  const Tensor &sample_default_x, const ConvGeometry &geom,
                  HashMode mode, uint64_t seed)
{
    GENREUSE_REQUIRE(sample_default_x.shape().cols() == geom.cols(),
                     "sample does not match layer ", layer.name());
    auto algo = std::make_shared<ReuseConvAlgo>(pattern, mode, seed);
    algo->fit(sample_default_x, geom);
    if (audit::enabled()) {
        // Stamp the audit slot's display name and the fit-time modeled
        // r_t from one suppressed profiling forward on the fit sample
        // (suppressed: the profiling run is not observed runtime
        // behavior, it IS the model).
        audit::setName(algo.get(), layer.name());
        audit::Suppress suppress;
        algo->multiply(sample_default_x, layer.weightMatrix(), geom,
                       nullptr);
        audit::setModeled(algo.get(),
                          algo->lastStats().redundancyRatio());
    }
    layer.setAlgo(algo);
    return algo;
}

} // namespace genreuse
