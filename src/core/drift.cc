#include "drift.h"

#include "common/eventlog.h"
#include "common/metrics.h"

namespace genreuse {

bool
PageHinkley::observe(double x)
{
    n_++;
    sum_ += x;
    mT_ += x - sum_ / static_cast<double>(n_) - cfg_.delta;
    if (mT_ < minMT_)
        minMT_ = mT_;
    if (tripped_ || n_ < cfg_.warmup)
        return false;
    if (mT_ - minMT_ > cfg_.lambda) {
        tripped_ = true;
        return true;
    }
    return false;
}

void
PageHinkley::reset()
{
    n_ = 0;
    sum_ = 0.0;
    mT_ = 0.0;
    minMT_ = 0.0;
    tripped_ = false;
}

DriftDetector::DriftDetector(std::string signal, DriftConfig cfg)
    : signal_(std::move(signal)), cfg_(cfg), ph_(cfg.ph),
      tag_(eventlog::intern(signal_)),
      ewmaGauge_(&metrics::gauge("drift." + signal_ + ".ewma")),
      phGauge_(&metrics::gauge("drift." + signal_ + ".ph"))
{
}

bool
DriftDetector::observe(double x)
{
    if (!cfg_.enabled)
        return false;
    if (haveEwma_) {
        ewma_ += cfg_.ewmaAlpha * (x - ewma_);
    } else {
        ewma_ = x;
        haveEwma_ = true;
    }
    const bool trip_now = ph_.observe(x);
    ewmaGauge_->set(ewma_);
    phGauge_->set(ph_.statistic());
    if (trip_now)
        metrics::counter("drift.trips").add();
    if (eventlog::enabled()) {
        // Tag with "<layer>/<signal>" when a layer scope is active so
        // the timeline localizes the drifting layer, else just the
        // signal name.
        uint16_t tag = tag_;
        const uint16_t cur = eventlog::currentTag();
        if (cur != 0)
            tag = eventlog::intern(eventlog::tagName(cur) + "/" + signal_);
        eventlog::record(eventlog::Type::Drift, tag, x, ewma_,
                         ph_.statistic(), trip_now ? 1 : 0);
    }
    return trip_now;
}

void
DriftDetector::reset()
{
    ph_.reset();
    ewma_ = 0.0;
    haveEwma_ = false;
}

} // namespace genreuse
