/**
 * @file
 * Empirical measurement harness: run a network (with whatever reuse
 * strategies are installed on its convolutions) over an evaluation set
 * and report accuracy plus per-image MCU latency. This is the "full
 * check" / "measuring on MCU" stage of the selection workflow
 * (Figure 8, Table 2) and the engine behind every end-to-end number in
 * the benches.
 */

#ifndef GENREUSE_CORE_MEASUREMENT_H
#define GENREUSE_CORE_MEASUREMENT_H

#include "data/dataset.h"
#include "guard.h"
#include "mcu/cost_model.h"
#include "nn/network.h"
#include "reuse_conv.h"
#include "reuse_pattern.h"

namespace genreuse {

/** Accuracy + latency of one configuration. */
struct Measurement
{
    double accuracy = 0.0;
    double perImageMs = 0.0;       //!< convs (runtime) + aux (static)
    double convMs = 0.0;           //!< conv-only portion
    CostLedger perImageConvLedger; //!< averaged over images
    ReuseStats stats;              //!< last conv-layer reuse statistics
};

/**
 * Evaluate @p net on @p eval with batch-1 forwards (the MCU executes
 * one image at a time), measuring per-image conv cost via ledgers.
 *
 * @param max_images cap on evaluation images (0 = all)
 */
Measurement measureNetwork(Network &net, const Dataset &eval,
                           const CostModel &model, size_t max_images = 0);

/**
 * Fit a reuse pattern on one conv layer from sample data and install
 * it. Runs a forward pass over @p fit_sample to capture the layer's
 * im2col matrix, fits the hash families, and swaps the layer's algo.
 *
 * @return the installed algorithm
 */
std::shared_ptr<ReuseConvAlgo> fitAndInstall(Network &net, Conv2D &layer,
                                             const ReusePattern &pattern,
                                             const Dataset &fit_sample,
                                             HashMode mode = HashMode::Learned,
                                             uint64_t seed = 99);

/**
 * fitAndInstall() wrapped in the runtime guard: the installed
 * algorithm measures each forward's reconstruction error against the
 * analytic budget and walks the degradation ladder (guard.h) when it
 * is violated.
 */
std::shared_ptr<GuardedReuseConvAlgo> fitAndInstallGuarded(
    Network &net, Conv2D &layer, const ReusePattern &pattern,
    const Dataset &fit_sample, GuardConfig config = {},
    HashMode mode = HashMode::Learned, uint64_t seed = 99);

/** Reset every conv in the network to the exact algorithm. */
void resetAllConvs(Network &net);

} // namespace genreuse

#endif // GENREUSE_CORE_MEASUREMENT_H
