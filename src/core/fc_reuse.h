/**
 * @file
 * Reuse for fully connected layers. The paper (§3.1) notes reuse
 * "can also apply to fully connected layers" but is less useful there;
 * this module makes that concrete. A sample's input vector x (length
 * F) is segmented into S = F/L pieces; similar segments cluster, and
 * by distributivity x_i W_i + x_j W_j ≈ c (W_i + W_j), so the output
 * is Σ_clusters centroid_c x (sum of the cluster's weight blocks).
 *
 * The economics differ from convolution: the weight-block reduction
 * costs F x O adds per sample — the same order as the exact product —
 * because a batch-1 FC has no rows to amortize it over. The
 * ablation_fc_reuse bench quantifies exactly this, reproducing the
 * paper's observation.
 */

#ifndef GENREUSE_CORE_FC_REUSE_H
#define GENREUSE_CORE_FC_REUSE_H

#include "lsh/lsh.h"
#include "mcu/cost_model.h"
#include "reuse_stats.h"
#include "tensor/tensor.h"

namespace genreuse {

/**
 * y = x W (+ bias) approximated by segment reuse, per sample.
 *
 * @param x N x F input (each sample clusters its own segments)
 * @param w F x O weight matrix
 * @param bias length-O bias (empty tensor for none)
 * @param segment_len L; must satisfy 1 <= L <= F. A trailing segment
 *        shorter than L is computed exactly.
 * @param family hash family over length-L vectors
 * @param ledger optional op accounting; clustering counts are the
 *        actual ops reported by clusterBySignature
 */
Tensor fcReuseForward(const Tensor &x, const Tensor &w, const Tensor &bias,
                      size_t segment_len, const HashFamily &family,
                      OpLedger *ledger = nullptr,
                      ReuseStats *stats = nullptr);

/**
 * fcReuseForward() writing into @p y (resized in place, capacity
 * reused). Per-row temporaries — the segment cluster table and the
 * sum-reduced weight blocks — come from thread-local scratch and the
 * stream arena, so a steady-state call performs no heap allocation.
 */
void fcReuseForwardInto(const Tensor &x, const Tensor &w, const Tensor &bias,
                        size_t segment_len, const HashFamily &family,
                        OpLedger *ledger, ReuseStats *stats, Tensor &y);

/** Exact reference with identical bias handling. */
Tensor fcExactForward(const Tensor &x, const Tensor &w, const Tensor &bias);

} // namespace genreuse

#endif // GENREUSE_CORE_FC_REUSE_H
