/**
 * @file
 * Pattern-space enumeration (§4.3): a configurable *scope* lists the
 * reorders, directions, granularities, block shapes and hash counts to
 * consider; enumeration takes their cross product and keeps the
 * patterns valid for a given layer geometry. The default scope mirrors
 * the "most common options" the paper's framework ships with.
 */

#ifndef GENREUSE_CORE_PATTERN_SPACE_H
#define GENREUSE_CORE_PATTERN_SPACE_H

#include <vector>

#include "reuse_pattern.h"

namespace genreuse {

/** The configurable scope of reuse patterns (Figure 8's input). */
struct PatternScope
{
    std::vector<ColumnOrder> columnOrders;
    std::vector<RowOrder> rowOrders;
    std::vector<ReuseDirection> directions;
    std::vector<size_t> granularities; //!< L values (0 = whole extent)
    std::vector<size_t> blockRows;     //!< 2-D block row counts
    std::vector<size_t> hashCounts;    //!< H values

    /**
     * A sensible default for a geometry: channel-major and pixel-major
     * orders, both directions, granularities derived from the kernel
     * tile and channel counts, block rows {1, 2}, H in {2..6}.
     */
    static PatternScope defaultScope(const ConvGeometry &geom);

    /** A small scope for tests (a handful of candidates). */
    static PatternScope smallScope(const ConvGeometry &geom);
};

/**
 * Cross product of the scope, filtered to patterns valid for @p geom.
 * Duplicate-equivalent combinations (e.g. block rows > 1 with a
 * horizontal direction) are skipped.
 */
std::vector<ReusePattern> enumeratePatterns(const PatternScope &scope,
                                            const ConvGeometry &geom);

/**
 * Granularity candidates for vertical reuse on a geometry: divisors
 * and tile-aligned fractions of Din (e.g. the paper's Table 1 uses
 * L in {15, 20, 32, ...} for Din = 75 or 1600).
 */
std::vector<size_t> verticalGranularities(const ConvGeometry &geom);

/** Granularity candidates (band heights) for horizontal reuse. */
std::vector<size_t> horizontalGranularities(const ConvGeometry &geom);

} // namespace genreuse

#endif // GENREUSE_CORE_PATTERN_SPACE_H
