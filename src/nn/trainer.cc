#include "trainer.h"

#include "common/logging.h"
#include "loss.h"

namespace genreuse {

TrainReport
train(Network &net, const Dataset &data, const TrainConfig &config)
{
    GENREUSE_REQUIRE(data.size() > 0, "empty training set");
    Sgd optimizer(net.params(), config.sgd);
    Rng rng(config.shuffleSeed);

    TrainReport report;
    for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
        double loss_sum = 0.0;
        size_t correct = 0, seen = 0;
        for (const auto &batch :
             makeBatches(data.size(), config.batchSize, rng)) {
            Tensor x = data.gatherImages(batch);
            std::vector<int> y = data.gatherLabels(batch);

            Tensor logits = net.forward(x, /*training=*/true);
            LossResult res = softmaxCrossEntropy(logits, y);
            net.backward(res.gradLogits);
            optimizer.step();

            loss_sum += res.loss * static_cast<double>(batch.size());
            correct += res.correct;
            seen += batch.size();
        }
        optimizer.endEpoch();
        report.epochLoss.push_back(loss_sum / static_cast<double>(seen));
        report.epochAccuracy.push_back(static_cast<double>(correct) /
                                       static_cast<double>(seen));
    }
    report.finalTrainAccuracy =
        report.epochAccuracy.empty() ? 0.0 : report.epochAccuracy.back();
    return report;
}

double
evaluate(Network &net, const Dataset &data, size_t batch_size)
{
    size_t correct = 0;
    for (const auto &batch : makeSequentialBatches(data.size(), batch_size)) {
        Tensor x = data.gatherImages(batch);
        std::vector<int> y = data.gatherLabels(batch);
        Tensor logits = net.forward(x, /*training=*/false);
        correct += static_cast<size_t>(
            accuracy(logits, y) * static_cast<double>(batch.size()) + 0.5);
    }
    return data.size() == 0
               ? 0.0
               : static_cast<double>(correct) / data.size();
}

Tensor
evaluateLogits(Network &net, const Dataset &data, size_t batch_size)
{
    GENREUSE_REQUIRE(data.size() > 0, "empty dataset");
    Tensor all;
    bool first = true;
    size_t row = 0;
    for (const auto &batch : makeSequentialBatches(data.size(), batch_size)) {
        Tensor x = data.gatherImages(batch);
        Tensor logits = net.forward(x, /*training=*/false);
        if (first) {
            all = Tensor({data.size(), logits.shape().cols()});
            first = false;
        }
        for (size_t r = 0; r < logits.shape().rows(); ++r, ++row)
            for (size_t c = 0; c < logits.shape().cols(); ++c)
                all.at2(row, c) = logits.at2(r, c);
    }
    return all;
}

} // namespace genreuse
