#include "dense.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/gemm.h"

namespace genreuse {

namespace {

/** Flatten any-rank per-sample data to (N, features). */
Tensor
flattenSamples(const Tensor &x, size_t expected_features)
{
    GENREUSE_REQUIRE(x.shape().rank() >= 2, "Dense input must have a batch");
    size_t n = x.shape().dim(0);
    size_t f = x.size() / n;
    GENREUSE_REQUIRE(f == expected_features, "Dense expects ",
                     expected_features, " features, got ", f);
    return x.reshaped({n, f});
}

} // namespace

Dense::Dense(std::string name, size_t in_features, size_t out_features,
             Rng &rng)
    : Layer(std::move(name)),
      inFeatures_(in_features),
      outFeatures_(out_features),
      weight_(Tensor::randomNormal(
          {in_features, out_features}, rng, 0.0f,
          std::sqrt(2.0f / static_cast<float>(in_features)))),
      bias_(Tensor({out_features}))
{
}

Tensor
Dense::forward(const Tensor &x, bool training)
{
    Tensor flat = flattenSamples(x, inFeatures_);
    Tensor y = matmul(flat, weight_.value);
    for (size_t r = 0; r < y.shape().rows(); ++r)
        for (size_t c = 0; c < y.shape().cols(); ++c)
            y.at2(r, c) += bias_.value[c];
    if (training) {
        cachedX_ = std::move(flat);
        cachedInShape_ = x.shape();
        haveCache_ = true;
    }
    return y;
}

Tensor
Dense::backward(const Tensor &grad_out)
{
    GENREUSE_REQUIRE(haveCache_, "Dense::backward without training forward");
    const size_t n = grad_out.shape().rows();
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < outFeatures_; ++c)
            bias_.grad[c] += grad_out.at2(r, c);

    Tensor gw({inFeatures_, outFeatures_});
    gemmTransA(cachedX_, grad_out, gw);
    for (size_t i = 0; i < gw.size(); ++i)
        weight_.grad[i] += gw[i];

    Tensor gx({n, inFeatures_});
    gemmTransB(grad_out, weight_.value, gx);
    haveCache_ = false;
    return gx.reshaped(cachedInShape_);
}

std::vector<Param *>
Dense::params()
{
    return {&weight_, &bias_};
}

Shape
Dense::outputShape(const Shape &in) const
{
    return Shape({in.dim(0), outFeatures_});
}

void
Dense::appendCost(const Shape &in, CostLedger &ledger) const
{
    OpCounts mm;
    mm.macs = in.dim(0) * inFeatures_ * outFeatures_;
    ledger.add(Stage::Gemm, mm);
    OpCounts rc;
    rc.aluOps = in.dim(0) * outFeatures_;
    ledger.add(Stage::Recovering, rc);
}

} // namespace genreuse
