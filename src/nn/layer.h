/**
 * @file
 * The Layer interface of the training/inference framework. Layers are
 * stateful (they cache what backward() needs), own their parameters,
 * and can report both their output shape and their MCU op-count cost
 * for a given input shape.
 */

#ifndef GENREUSE_NN_LAYER_H
#define GENREUSE_NN_LAYER_H

#include <memory>
#include <string>
#include <vector>

#include "mcu/cost_model.h"
#include "mcu/memory_model.h"
#include "tensor/tensor.h"

namespace genreuse {

/** A trainable parameter: value plus accumulated gradient. */
struct Param
{
    Tensor value;
    Tensor grad;

    explicit Param(Tensor v) : value(std::move(v)), grad(value.shape()) {}

    /** Zero the gradient buffer. */
    void zeroGrad() { grad.zero(); }
};

/**
 * Base class of every network layer. forward() may cache activations;
 * backward() consumes those caches and must be called after the
 * matching forward(). Layers without parameters return an empty params
 * list.
 */
class Layer
{
  public:
    explicit Layer(std::string name) : name_(std::move(name)) {}
    virtual ~Layer() = default;

    Layer(const Layer &) = delete;
    Layer &operator=(const Layer &) = delete;

    const std::string &name() const { return name_; }

    /**
     * Compute the layer output.
     * @param x input activation
     * @param training true during training (affects BN statistics and
     *                 cache retention)
     */
    virtual Tensor forward(const Tensor &x, bool training) = 0;

    /**
     * Backpropagate: given dLoss/dOutput, accumulate parameter
     * gradients and return dLoss/dInput.
     */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** Trainable parameters (empty by default). */
    virtual std::vector<Param *> params() { return {}; }

    /** Shape of the output for a given input shape. */
    virtual Shape outputShape(const Shape &in) const = 0;

    /**
     * Account this layer's inference work for the MCU cost model.
     * The default is free (shape-only layers).
     */
    virtual void
    appendCost(const Shape &in, CostLedger &ledger) const
    {
        (void)in;
        (void)ledger;
    }

    /**
     * Like appendCost() but *excluding* convolution work. End-to-end
     * latency measurements combine the convolutions' actual runtime
     * ledgers (which reflect installed reuse strategies) with this
     * static cost of everything else; the default forwards to
     * appendCost(), Conv2D overrides it to a no-op, and composite
     * blocks recurse into their non-conv children.
     */
    virtual void
    appendAuxCost(const Shape &in, CostLedger &ledger) const
    {
        appendCost(in, ledger);
    }

    /** Memory footprint when deployed with int8 weights. */
    virtual LayerFootprint footprint(const Shape &in) const;

    /**
     * Append every convolution layer reachable from this one (itself
     * for Conv2D, children for composite blocks). Used by the reuse
     * pattern selection to enumerate optimizable layers.
     */
    virtual void
    collectConvs(std::vector<class Conv2D *> &out)
    {
        (void)out;
    }

  private:
    std::string name_;
};

} // namespace genreuse

#endif // GENREUSE_NN_LAYER_H
