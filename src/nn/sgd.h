/**
 * @file
 * SGD with momentum, weight decay, and step learning-rate decay — the
 * optimizer configuration of §5.1 (lr 0.001, x0.1 every 15 epochs,
 * weight decay 1e-4, momentum 0.95).
 */

#ifndef GENREUSE_NN_SGD_H
#define GENREUSE_NN_SGD_H

#include <vector>

#include "layer.h"

namespace genreuse {

/** Optimizer hyperparameters. */
struct SgdConfig
{
    double learningRate = 0.001;
    double momentum = 0.95;
    double weightDecay = 1e-4;
    double lrDecayFactor = 0.1;
    size_t lrDecayEveryEpochs = 15;
};

/** Stateful SGD over a fixed parameter set. */
class Sgd
{
  public:
    Sgd(std::vector<Param *> params, SgdConfig config);

    /** Apply one update from the accumulated gradients, then zero them. */
    void step();

    /** Advance the epoch counter (applies LR decay on schedule). */
    void endEpoch();

    double currentLearningRate() const { return lr_; }
    size_t epoch() const { return epoch_; }

  private:
    std::vector<Param *> params_;
    SgdConfig config_;
    std::vector<Tensor> velocity_;
    double lr_;
    size_t epoch_ = 0;
};

} // namespace genreuse

#endif // GENREUSE_NN_SGD_H
