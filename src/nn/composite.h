/**
 * @file
 * Composite blocks: SqueezeNet Fire modules (with and without the
 * "complex bypass" variant the paper evaluates) and ResNet basic
 * residual blocks. Composites keep the Network strictly sequential
 * while still expressing fan-out/fan-in topologies.
 */

#ifndef GENREUSE_NN_COMPOSITE_H
#define GENREUSE_NN_COMPOSITE_H

#include <memory>

#include "activation.h"
#include "batchnorm.h"
#include "conv2d.h"
#include "layer.h"

namespace genreuse {

/**
 * SqueezeNet Fire module: a 1x1 squeeze conv followed by parallel 1x1
 * and 3x3 expand convs whose outputs concatenate along channels.
 * With bypass enabled, the module input is added to the output
 * (requires inChannels == expand1x1 + expand3x3).
 *
 * Each conv is followed by batch normalization (foldable into the
 * conv at deployment — the paper applies conv+BN fusion, §5.1); pass
 * batch_norm = false for the strictly BN-free original topology.
 */
class FireModule : public Layer
{
  public:
    FireModule(std::string name, size_t in_channels, size_t squeeze,
               size_t expand1x1, size_t expand3x3, bool bypass, Rng &rng,
               bool batch_norm = true);

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;
    Shape outputShape(const Shape &in) const override;
    void appendCost(const Shape &in, CostLedger &ledger) const override;
    void appendAuxCost(const Shape &in, CostLedger &ledger) const override;
    LayerFootprint footprint(const Shape &in) const override;
    void collectConvs(std::vector<Conv2D *> &out) override;

    Conv2D &squeezeConv() { return *squeeze_; }
    Conv2D &expand1x1Conv() { return *expand1_; }
    Conv2D &expand3x3Conv() { return *expand3_; }
    bool hasBypass() const { return bypass_; }

  private:
    bool bypass_;
    std::unique_ptr<Conv2D> squeeze_;
    std::unique_ptr<BatchNorm2D> squeezeBn_; // nullptr when disabled
    std::unique_ptr<ReLU> squeezeRelu_;
    std::unique_ptr<Conv2D> expand1_;
    std::unique_ptr<BatchNorm2D> expand1Bn_;
    std::unique_ptr<ReLU> expand1Relu_;
    std::unique_ptr<Conv2D> expand3_;
    std::unique_ptr<BatchNorm2D> expand3Bn_;
    std::unique_ptr<ReLU> expand3Relu_;
};

/**
 * ResNet-18 basic block: two 3x3 convs with BN and ReLU, plus an
 * identity or 1x1-projection shortcut.
 */
class ResidualBlock : public Layer
{
  public:
    ResidualBlock(std::string name, size_t in_channels, size_t out_channels,
                  size_t stride, Rng &rng);

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;
    Shape outputShape(const Shape &in) const override;
    void appendCost(const Shape &in, CostLedger &ledger) const override;
    void appendAuxCost(const Shape &in, CostLedger &ledger) const override;
    LayerFootprint footprint(const Shape &in) const override;
    void collectConvs(std::vector<Conv2D *> &out) override;

    Conv2D &conv1() { return *conv1_; }
    Conv2D &conv2() { return *conv2_; }
    bool hasProjection() const { return proj_ != nullptr; }

  private:
    std::unique_ptr<Conv2D> conv1_;
    std::unique_ptr<BatchNorm2D> bn1_;
    std::unique_ptr<ReLU> relu1_;
    std::unique_ptr<Conv2D> conv2_;
    std::unique_ptr<BatchNorm2D> bn2_;
    std::unique_ptr<Conv2D> proj_;     // nullptr for identity shortcut
    std::unique_ptr<BatchNorm2D> projBn_;

    // Backward caches.
    Tensor cachedSum_; // pre-final-ReLU sum, for the ReLU mask
    bool haveCache_ = false;
};

} // namespace genreuse

#endif // GENREUSE_NN_COMPOSITE_H
