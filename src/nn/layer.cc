#include "layer.h"

namespace genreuse {

LayerFootprint
Layer::footprint(const Shape &in) const
{
    LayerFootprint fp;
    fp.name = name();
    fp.inputBytes = in.elems(); // int8 activations: 1 byte per element
    fp.outputBytes = outputShape(in).elems();
    // Parameter bytes (int8 deployment).
    for (auto *p : const_cast<Layer *>(this)->params())
        fp.weightBytes += p->value.size();
    return fp;
}

} // namespace genreuse
