/**
 * @file
 * Binary serialization for trained parameters and fitted reuse state.
 * A deployment pipeline trains on the server (paper §5.1), selects
 * reuse patterns, then ships weights + learned hash families to the
 * MCU; these routines implement the interchange format.
 *
 * Format (little-endian):
 *   magic "GRSZ", u32 version, u64 blob count,
 *   then per blob: u64 element count, that many f32 values.
 * Tensors serialize shape-first (u64 rank, u64 dims...).
 */

#ifndef GENREUSE_NN_SERIALIZE_H
#define GENREUSE_NN_SERIALIZE_H

#include <iosfwd>
#include <string>

#include "lsh/lsh.h"
#include "network.h"
#include "tensor/tensor.h"

namespace genreuse {

/** Write one tensor (shape + data) to a stream. */
void writeTensor(std::ostream &os, const Tensor &t);

/** Read one tensor; fails fatally on malformed input. */
Tensor readTensor(std::istream &is);

/**
 * Save every trainable parameter of @p net, in parameter order.
 * The architecture itself is code; only values are stored, so loading
 * requires an identically constructed network.
 */
void saveParameters(Network &net, const std::string &path);

/**
 * Load parameters saved by saveParameters() into an identically
 * structured network. Fails fatally on count/shape mismatch.
 */
void loadParameters(Network &net, const std::string &path);

/** Save a fitted hash family (vectors + biases). */
void writeHashFamily(std::ostream &os, const HashFamily &family);

/** Read a hash family written by writeHashFamily(). */
HashFamily readHashFamily(std::istream &is);

} // namespace genreuse

#endif // GENREUSE_NN_SERIALIZE_H
