#include "network.h"

#include "common/eventlog.h"
#include "common/logging.h"

namespace genreuse {

Layer &
Network::add(std::unique_ptr<Layer> layer)
{
    GENREUSE_REQUIRE(layer != nullptr, "cannot add a null layer");
    layers_.push_back(std::move(layer));
    return *layers_.back();
}

Tensor
Network::forward(const Tensor &x, bool training)
{
    // Forward begin/end bracket every per-layer event in the journal,
    // so one inference is one delimited episode in a postmortem dump.
    eventlog::record(eventlog::Type::ForwardBegin, 0, 0.0, 0.0, 0.0,
                     static_cast<uint32_t>(x.shape().dim(0)));
    Tensor cur = x;
    for (auto &l : layers_)
        cur = l->forward(cur, training);
    eventlog::record(eventlog::Type::ForwardEnd, 0, 0.0, 0.0, 0.0,
                     static_cast<uint32_t>(cur.shape().dim(0)));
    return cur;
}

Tensor
Network::backward(const Tensor &grad_logits)
{
    Tensor g = grad_logits;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

std::vector<Param *>
Network::params()
{
    std::vector<Param *> out;
    for (auto &l : layers_) {
        auto p = l->params();
        out.insert(out.end(), p.begin(), p.end());
    }
    return out;
}

void
Network::zeroGrads()
{
    for (auto *p : params())
        p->zeroGrad();
}

std::vector<Conv2D *>
Network::convLayers()
{
    std::vector<Conv2D *> out;
    for (auto &l : layers_)
        l->collectConvs(out);
    return out;
}

Conv2D *
Network::findConv(const std::string &name)
{
    for (auto *c : convLayers())
        if (c->name() == name)
            return c;
    return nullptr;
}

CostLedger
Network::staticCost(const Shape &input) const
{
    CostLedger ledger;
    Shape cur = input;
    for (const auto &l : layers_) {
        l->appendCost(cur, ledger);
        cur = l->outputShape(cur);
    }
    return ledger;
}

CostLedger
Network::staticAuxCost(const Shape &input) const
{
    CostLedger ledger;
    Shape cur = input;
    for (const auto &l : layers_) {
        l->appendAuxCost(cur, ledger);
        cur = l->outputShape(cur);
    }
    return ledger;
}

MemoryEstimate
Network::memoryEstimate(const Shape &input) const
{
    MemoryEstimate est;
    Shape cur = input;
    for (const auto &l : layers_) {
        est.layers.push_back(l->footprint(cur));
        cur = l->outputShape(cur);
    }
    return est;
}

void
Network::setConvLedger(CostLedger *ledger)
{
    for (auto *c : convLayers())
        c->setLedger(ledger);
}

} // namespace genreuse
