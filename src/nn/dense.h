/**
 * @file
 * Fully connected layer. Accepts rank-2 (N, F) input or rank-4
 * activations, which it flattens per sample.
 */

#ifndef GENREUSE_NN_DENSE_H
#define GENREUSE_NN_DENSE_H

#include "layer.h"

namespace genreuse {

/** y = x W + b with W of shape (inFeatures, outFeatures). */
class Dense : public Layer
{
  public:
    Dense(std::string name, size_t in_features, size_t out_features,
          Rng &rng);

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;
    Shape outputShape(const Shape &in) const override;
    void appendCost(const Shape &in, CostLedger &ledger) const override;

    Param &weight() { return weight_; }
    Param &bias() { return bias_; }

    size_t inFeatures() const { return inFeatures_; }
    size_t outFeatures() const { return outFeatures_; }

  private:
    size_t inFeatures_, outFeatures_;
    Param weight_;
    Param bias_;

    Tensor cachedX_; // flattened input
    Shape cachedInShape_;
    bool haveCache_ = false;
};

} // namespace genreuse

#endif // GENREUSE_NN_DENSE_H
