/**
 * @file
 * Network — an ordered stack of layers with whole-model forward,
 * backward, parameter enumeration, cost accounting and memory
 * estimation.
 */

#ifndef GENREUSE_NN_NETWORK_H
#define GENREUSE_NN_NETWORK_H

#include <memory>
#include <string>
#include <vector>

#include "conv2d.h"
#include "layer.h"

namespace genreuse {

/** A sequential network (fan-out lives inside composite layers). */
class Network
{
  public:
    explicit Network(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Append a layer; returns a reference for chaining configuration. */
    Layer &add(std::unique_ptr<Layer> layer);

    /** Convenience: construct a layer in place. */
    template <typename L, typename... Args>
    L &
    emplace(Args &&...args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L &ref = *layer;
        add(std::move(layer));
        return ref;
    }

    size_t numLayers() const { return layers_.size(); }
    Layer &layer(size_t i) { return *layers_[i]; }

    /** Run the whole network. */
    Tensor forward(const Tensor &x, bool training = false);

    /** Backpropagate from dLoss/dLogits; returns dLoss/dInput. */
    Tensor backward(const Tensor &grad_logits);

    /** All trainable parameters. */
    std::vector<Param *> params();

    /** Zero every parameter gradient. */
    void zeroGrads();

    /** Every convolution in the network, in execution order. */
    std::vector<Conv2D *> convLayers();

    /** Find a convolution by name; nullptr when absent. */
    Conv2D *findConv(const std::string &name);

    /**
     * Total inference cost for the given input shape, summed across
     * layers using each layer's static appendCost().
     */
    CostLedger staticCost(const Shape &input) const;

    /**
     * Static cost of everything *except* convolutions (pooling, ReLU,
     * BN, dense, concat/bypass glue). Combine with the convolutions'
     * runtime ledgers for end-to-end latency under installed reuse
     * strategies.
     */
    CostLedger staticAuxCost(const Shape &input) const;

    /** Per-layer deployment memory estimate. */
    MemoryEstimate memoryEstimate(const Shape &input) const;

    /** Attach/detach a ledger on every convolution layer. */
    void setConvLedger(CostLedger *ledger);

  private:
    std::string name_;
    std::vector<std::unique_ptr<Layer>> layers_;
};

} // namespace genreuse

#endif // GENREUSE_NN_NETWORK_H
