#include "batchnorm.h"

#include <cmath>

#include "common/logging.h"

namespace genreuse {

BatchNorm2D::BatchNorm2D(std::string name, size_t channels, float momentum,
                         float eps)
    : Layer(std::move(name)),
      channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Tensor::full({channels}, 1.0f)),
      beta_(Tensor({channels})),
      runningMean_({channels}),
      runningVar_(Tensor::full({channels}, 1.0f))
{
}

Tensor
BatchNorm2D::forward(const Tensor &x, bool training)
{
    GENREUSE_REQUIRE(x.shape().rank() == 4 && x.shape().channels() ==
                     channels_, "BatchNorm2D shape mismatch on ", name());
    const Shape &s = x.shape();
    const size_t hw = s.height() * s.width();
    const size_t per_channel = s.batch() * hw;

    Tensor mean({channels_}), var({channels_});
    if (training) {
        for (size_t c = 0; c < channels_; ++c) {
            double m = 0.0;
            for (size_t b = 0; b < s.batch(); ++b) {
                const float *p =
                    x.data() + (b * channels_ + c) * hw;
                for (size_t i = 0; i < hw; ++i)
                    m += p[i];
            }
            m /= static_cast<double>(per_channel);
            double v = 0.0;
            for (size_t b = 0; b < s.batch(); ++b) {
                const float *p =
                    x.data() + (b * channels_ + c) * hw;
                for (size_t i = 0; i < hw; ++i) {
                    double d = p[i] - m;
                    v += d * d;
                }
            }
            v /= static_cast<double>(per_channel);
            mean[c] = static_cast<float>(m);
            var[c] = static_cast<float>(v);
            runningMean_[c] =
                momentum_ * runningMean_[c] + (1.0f - momentum_) * mean[c];
            runningVar_[c] =
                momentum_ * runningVar_[c] + (1.0f - momentum_) * var[c];
        }
    } else {
        mean = runningMean_;
        var = runningVar_;
    }

    Tensor y(s);
    Tensor inv_std({channels_});
    for (size_t c = 0; c < channels_; ++c)
        inv_std[c] = 1.0f / std::sqrt(var[c] + eps_);

    Tensor xhat(s);
    for (size_t b = 0; b < s.batch(); ++b) {
        for (size_t c = 0; c < channels_; ++c) {
            const float *px = x.data() + (b * channels_ + c) * hw;
            float *ph = xhat.data() + (b * channels_ + c) * hw;
            float *py = y.data() + (b * channels_ + c) * hw;
            const float mu = mean[c], is = inv_std[c];
            const float g = gamma_.value[c], bt = beta_.value[c];
            for (size_t i = 0; i < hw; ++i) {
                float xn = (px[i] - mu) * is;
                ph[i] = xn;
                py[i] = g * xn + bt;
            }
        }
    }

    if (training) {
        cachedXHat_ = std::move(xhat);
        cachedInvStd_ = std::move(inv_std);
        cachedShape_ = s;
        haveCache_ = true;
    }
    return y;
}

Tensor
BatchNorm2D::backward(const Tensor &grad_out)
{
    GENREUSE_REQUIRE(haveCache_, "BatchNorm2D::backward without forward");
    const Shape &s = cachedShape_;
    const size_t hw = s.height() * s.width();
    const size_t m = s.batch() * hw;
    Tensor gx(s);

    for (size_t c = 0; c < channels_; ++c) {
        // Reductions for the batch-statistics gradient terms.
        double sum_g = 0.0, sum_gx = 0.0;
        for (size_t b = 0; b < s.batch(); ++b) {
            const float *pg = grad_out.data() + (b * channels_ + c) * hw;
            const float *ph =
                cachedXHat_.data() + (b * channels_ + c) * hw;
            for (size_t i = 0; i < hw; ++i) {
                sum_g += pg[i];
                sum_gx += static_cast<double>(pg[i]) * ph[i];
            }
        }
        gamma_.grad[c] += static_cast<float>(sum_gx);
        beta_.grad[c] += static_cast<float>(sum_g);

        const float k = gamma_.value[c] * cachedInvStd_[c] /
                        static_cast<float>(m);
        const float sg = static_cast<float>(sum_g);
        const float sgx = static_cast<float>(sum_gx);
        const float fm = static_cast<float>(m);
        for (size_t b = 0; b < s.batch(); ++b) {
            const float *pg = grad_out.data() + (b * channels_ + c) * hw;
            const float *ph =
                cachedXHat_.data() + (b * channels_ + c) * hw;
            float *pgx = gx.data() + (b * channels_ + c) * hw;
            for (size_t i = 0; i < hw; ++i)
                pgx[i] = k * (fm * pg[i] - sg - ph[i] * sgx);
        }
    }
    haveCache_ = false;
    return gx;
}

std::vector<Param *>
BatchNorm2D::params()
{
    return {&gamma_, &beta_};
}

void
BatchNorm2D::appendCost(const Shape &in, CostLedger &ledger) const
{
    OpCounts ops;
    // Folded into the conv at deployment: scale+shift per element.
    ops.aluOps = in.elems();
    ledger.add(Stage::Recovering, ops);
}

void
BatchNorm2D::foldInto(Conv2D &conv) const
{
    GENREUSE_REQUIRE(conv.outChannels() == channels_,
                     "fold target channel mismatch");
    Tensor &k = conv.kernel().value;
    Tensor &b = conv.bias().value;
    const size_t per_filter = k.size() / channels_;
    for (size_t c = 0; c < channels_; ++c) {
        float scale = gamma_.value[c] /
                      std::sqrt(runningVar_[c] + eps_);
        float *kw = k.data() + c * per_filter;
        for (size_t i = 0; i < per_filter; ++i)
            kw[i] *= scale;
        b[c] = (b[c] - runningMean_[c]) * scale + beta_.value[c];
    }
}

} // namespace genreuse
