/**
 * @file
 * Spatial pooling layers: max, average, and global average pooling.
 */

#ifndef GENREUSE_NN_POOLING_H
#define GENREUSE_NN_POOLING_H

#include <cstdint>
#include <vector>

#include "layer.h"

namespace genreuse {

/** Max pooling over windows of size x size with the given stride. */
class MaxPool2D : public Layer
{
  public:
    MaxPool2D(std::string name, size_t size, size_t stride);

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    Shape outputShape(const Shape &in) const override;
    void appendCost(const Shape &in, CostLedger &ledger) const override;

  private:
    size_t size_, stride_;
    std::vector<uint32_t> argmax_; // flat input index per output element
    Shape cachedInShape_;
    bool haveCache_ = false;
};

/** Average pooling over windows of size x size with the given stride. */
class AvgPool2D : public Layer
{
  public:
    AvgPool2D(std::string name, size_t size, size_t stride);

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    Shape outputShape(const Shape &in) const override;
    void appendCost(const Shape &in, CostLedger &ledger) const override;

  private:
    size_t size_, stride_;
    Shape cachedInShape_;
    bool haveCache_ = false;
};

/** Pool each channel down to a single value (SqueezeNet/ResNet head). */
class GlobalAvgPool2D : public Layer
{
  public:
    explicit GlobalAvgPool2D(std::string name) : Layer(std::move(name)) {}

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    Shape outputShape(const Shape &in) const override;
    void appendCost(const Shape &in, CostLedger &ledger) const override;

  private:
    Shape cachedInShape_;
    bool haveCache_ = false;
};

} // namespace genreuse

#endif // GENREUSE_NN_POOLING_H
