#include "activation.h"

#include "common/logging.h"

namespace genreuse {

Tensor
ReLU::forward(const Tensor &x, bool training)
{
    Tensor y(x.shape());
    if (training) {
        mask_.assign(x.size(), 0);
        cachedShape_ = x.shape();
        haveCache_ = true;
    }
    for (size_t i = 0; i < x.size(); ++i) {
        bool pos = x[i] > 0.0f;
        y[i] = pos ? x[i] : 0.0f;
        if (training && pos)
            mask_[i] = 1;
    }
    return y;
}

Tensor
ReLU::backward(const Tensor &grad_out)
{
    GENREUSE_REQUIRE(haveCache_, "ReLU::backward without training forward");
    GENREUSE_REQUIRE(grad_out.size() == mask_.size(),
                     "ReLU gradient size mismatch");
    Tensor gx(cachedShape_);
    for (size_t i = 0; i < gx.size(); ++i)
        gx[i] = mask_[i] ? grad_out[i] : 0.0f;
    haveCache_ = false;
    return gx;
}

void
ReLU::appendCost(const Shape &in, CostLedger &ledger) const
{
    OpCounts ops;
    ops.aluOps = in.elems();
    ledger.add(Stage::Recovering, ops);
}

} // namespace genreuse
