#include "composite.h"

#include "common/logging.h"

namespace genreuse {

namespace {

/** Concatenate two NCHW tensors along the channel dimension. */
Tensor
concatChannels(const Tensor &a, const Tensor &b)
{
    const Shape &sa = a.shape(), &sb = b.shape();
    GENREUSE_REQUIRE(sa.batch() == sb.batch() &&
                     sa.height() == sb.height() &&
                     sa.width() == sb.width(),
                     "concat spatial mismatch: ", sa.toString(), " vs ",
                     sb.toString());
    Tensor out({sa.batch(), sa.channels() + sb.channels(), sa.height(),
                sa.width()});
    for (size_t n = 0; n < sa.batch(); ++n) {
        for (size_t c = 0; c < sa.channels(); ++c)
            for (size_t h = 0; h < sa.height(); ++h)
                for (size_t w = 0; w < sa.width(); ++w)
                    out.at4(n, c, h, w) = a.at4(n, c, h, w);
        for (size_t c = 0; c < sb.channels(); ++c)
            for (size_t h = 0; h < sb.height(); ++h)
                for (size_t w = 0; w < sb.width(); ++w)
                    out.at4(n, sa.channels() + c, h, w) = b.at4(n, c, h, w);
    }
    return out;
}

/** Slice channels [from, from+count) out of an NCHW tensor. */
Tensor
sliceChannels(const Tensor &x, size_t from, size_t count)
{
    const Shape &s = x.shape();
    GENREUSE_REQUIRE(from + count <= s.channels(), "channel slice overflow");
    Tensor out({s.batch(), count, s.height(), s.width()});
    for (size_t n = 0; n < s.batch(); ++n)
        for (size_t c = 0; c < count; ++c)
            for (size_t h = 0; h < s.height(); ++h)
                for (size_t w = 0; w < s.width(); ++w)
                    out.at4(n, c, h, w) = x.at4(n, from + c, h, w);
    return out;
}

} // namespace

FireModule::FireModule(std::string name, size_t in_channels, size_t squeeze,
                       size_t expand1x1, size_t expand3x3, bool bypass,
                       Rng &rng, bool batch_norm)
    : Layer(name), bypass_(bypass)
{
    GENREUSE_REQUIRE(!bypass || in_channels == expand1x1 + expand3x3,
                     "Fire bypass needs matching channel counts in ", name);
    squeeze_ = std::make_unique<Conv2D>(name + ".squeeze.conv", in_channels,
                                        squeeze, 1, 1, 0, rng);
    squeezeRelu_ = std::make_unique<ReLU>(name + ".squeeze.relu");
    expand1_ = std::make_unique<Conv2D>(name + ".expand_1x1.conv", squeeze,
                                        expand1x1, 1, 1, 0, rng);
    expand1Relu_ = std::make_unique<ReLU>(name + ".expand_1x1.relu");
    expand3_ = std::make_unique<Conv2D>(name + ".expand_3x3.conv", squeeze,
                                        expand3x3, 3, 1, 1, rng);
    expand3Relu_ = std::make_unique<ReLU>(name + ".expand_3x3.relu");
    if (batch_norm) {
        squeezeBn_ = std::make_unique<BatchNorm2D>(name + ".squeeze.bn",
                                                   squeeze);
        expand1Bn_ = std::make_unique<BatchNorm2D>(name + ".expand_1x1.bn",
                                                   expand1x1);
        expand3Bn_ = std::make_unique<BatchNorm2D>(name + ".expand_3x3.bn",
                                                   expand3x3);
    }
}

Tensor
FireModule::forward(const Tensor &x, bool training)
{
    Tensor s = squeeze_->forward(x, training);
    if (squeezeBn_)
        s = squeezeBn_->forward(s, training);
    s = squeezeRelu_->forward(s, training);
    Tensor e1 = expand1_->forward(s, training);
    if (expand1Bn_)
        e1 = expand1Bn_->forward(e1, training);
    e1 = expand1Relu_->forward(e1, training);
    Tensor e3 = expand3_->forward(s, training);
    if (expand3Bn_)
        e3 = expand3Bn_->forward(e3, training);
    e3 = expand3Relu_->forward(e3, training);
    Tensor out = concatChannels(e1, e3);
    if (bypass_) {
        for (size_t i = 0; i < out.size(); ++i)
            out[i] += x[i];
    }
    return out;
}

Tensor
FireModule::backward(const Tensor &grad_out)
{
    const size_t c1 = expand1_->outChannels();
    const size_t c3 = expand3_->outChannels();
    Tensor g1 = sliceChannels(grad_out, 0, c1);
    Tensor g3 = sliceChannels(grad_out, c1, c3);

    g1 = expand1Relu_->backward(g1);
    if (expand1Bn_)
        g1 = expand1Bn_->backward(g1);
    Tensor gs1 = expand1_->backward(g1);
    g3 = expand3Relu_->backward(g3);
    if (expand3Bn_)
        g3 = expand3Bn_->backward(g3);
    Tensor gs3 = expand3_->backward(g3);
    for (size_t i = 0; i < gs1.size(); ++i)
        gs1[i] += gs3[i];

    Tensor gs = squeezeRelu_->backward(gs1);
    if (squeezeBn_)
        gs = squeezeBn_->backward(gs);
    Tensor gx = squeeze_->backward(gs);
    if (bypass_) {
        for (size_t i = 0; i < gx.size(); ++i)
            gx[i] += grad_out[i];
    }
    return gx;
}

std::vector<Param *>
FireModule::params()
{
    std::vector<Param *> out;
    std::vector<Layer *> layers = {squeeze_.get(), expand1_.get(),
                                   expand3_.get()};
    if (squeezeBn_) {
        layers.push_back(squeezeBn_.get());
        layers.push_back(expand1Bn_.get());
        layers.push_back(expand3Bn_.get());
    }
    for (Layer *l : layers) {
        auto p = l->params();
        out.insert(out.end(), p.begin(), p.end());
    }
    return out;
}

Shape
FireModule::outputShape(const Shape &in) const
{
    Shape s = squeeze_->outputShape(in);
    Shape e1 = expand1_->outputShape(s);
    Shape e3 = expand3_->outputShape(s);
    return Shape({e1.batch(), e1.channels() + e3.channels(), e1.height(),
                  e1.width()});
}

void
FireModule::appendCost(const Shape &in, CostLedger &ledger) const
{
    Shape s = squeeze_->outputShape(in);
    squeeze_->appendCost(in, ledger);
    expand1_->appendCost(s, ledger);
    expand3_->appendCost(s, ledger);
    if (bypass_) {
        OpCounts ops;
        ops.aluOps = outputShape(in).elems();
        ledger.add(Stage::Recovering, ops);
    }
}

void
FireModule::appendAuxCost(const Shape &in, CostLedger &ledger) const
{
    // BN folds into the convs at deployment, so it adds no aux cost.
    Shape s = squeeze_->outputShape(in);
    squeezeRelu_->appendAuxCost(s, ledger);
    Shape e1 = expand1_->outputShape(s);
    Shape e3 = expand3_->outputShape(s);
    expand1Relu_->appendAuxCost(e1, ledger);
    expand3Relu_->appendAuxCost(e3, ledger);
    OpCounts ops;
    ops.elemMoves = outputShape(in).elems(); // channel concat
    if (bypass_)
        ops.aluOps = outputShape(in).elems();
    ledger.add(Stage::Recovering, ops);
}

LayerFootprint
FireModule::footprint(const Shape &in) const
{
    LayerFootprint fp = Layer::footprint(in);
    // Scratch: squeeze output plus the larger expand im2col buffer.
    Shape s = squeeze_->outputShape(in);
    fp.scratchBytes = s.elems() + expand3_->footprint(s).scratchBytes;
    return fp;
}

void
FireModule::collectConvs(std::vector<Conv2D *> &out)
{
    out.push_back(squeeze_.get());
    out.push_back(expand1_.get());
    out.push_back(expand3_.get());
}

ResidualBlock::ResidualBlock(std::string name, size_t in_channels,
                             size_t out_channels, size_t stride, Rng &rng)
    : Layer(name)
{
    conv1_ = std::make_unique<Conv2D>(name + ".conv1", in_channels,
                                      out_channels, 3, stride, 1, rng);
    bn1_ = std::make_unique<BatchNorm2D>(name + ".bn1", out_channels);
    relu1_ = std::make_unique<ReLU>(name + ".relu1");
    conv2_ = std::make_unique<Conv2D>(name + ".conv2", out_channels,
                                      out_channels, 3, 1, 1, rng);
    bn2_ = std::make_unique<BatchNorm2D>(name + ".bn2", out_channels);
    if (stride != 1 || in_channels != out_channels) {
        proj_ = std::make_unique<Conv2D>(name + ".proj", in_channels,
                                         out_channels, 1, stride, 0, rng);
        projBn_ = std::make_unique<BatchNorm2D>(name + ".proj_bn",
                                                out_channels);
    }
}

Tensor
ResidualBlock::forward(const Tensor &x, bool training)
{
    Tensor main = bn1_->forward(conv1_->forward(x, training), training);
    main = relu1_->forward(main, training);
    main = bn2_->forward(conv2_->forward(main, training), training);

    Tensor shortcut =
        proj_ ? projBn_->forward(proj_->forward(x, training), training) : x;
    GENREUSE_REQUIRE(shortcut.size() == main.size(),
                     "residual shape mismatch in ", name());
    for (size_t i = 0; i < main.size(); ++i)
        main[i] += shortcut[i];

    // Final ReLU (mask kept manually so backward can split gradients).
    if (training) {
        cachedSum_ = main;
        haveCache_ = true;
    }
    for (size_t i = 0; i < main.size(); ++i)
        main[i] = main[i] > 0.0f ? main[i] : 0.0f;
    return main;
}

Tensor
ResidualBlock::backward(const Tensor &grad_out)
{
    GENREUSE_REQUIRE(haveCache_, "ResidualBlock::backward without forward");
    Tensor g(cachedSum_.shape());
    for (size_t i = 0; i < g.size(); ++i)
        g[i] = cachedSum_[i] > 0.0f ? grad_out[i] : 0.0f;
    haveCache_ = false;

    Tensor g_main = conv2_->backward(bn2_->backward(g));
    g_main = conv1_->backward(bn1_->backward(relu1_->backward(g_main)));

    Tensor g_short =
        proj_ ? proj_->backward(projBn_->backward(g)) : g;
    for (size_t i = 0; i < g_main.size(); ++i)
        g_main[i] += g_short[i];
    return g_main;
}

std::vector<Param *>
ResidualBlock::params()
{
    std::vector<Param *> out;
    std::vector<Layer *> layers = {conv1_.get(), bn1_.get(), conv2_.get(),
                                   bn2_.get()};
    if (proj_) {
        layers.push_back(proj_.get());
        layers.push_back(projBn_.get());
    }
    for (Layer *l : layers) {
        auto p = l->params();
        out.insert(out.end(), p.begin(), p.end());
    }
    return out;
}

Shape
ResidualBlock::outputShape(const Shape &in) const
{
    return conv2_->outputShape(conv1_->outputShape(in));
}

void
ResidualBlock::appendCost(const Shape &in, CostLedger &ledger) const
{
    Shape mid = conv1_->outputShape(in);
    conv1_->appendCost(in, ledger);
    bn1_->appendCost(mid, ledger);
    conv2_->appendCost(mid, ledger);
    bn2_->appendCost(mid, ledger);
    if (proj_) {
        proj_->appendCost(in, ledger);
        projBn_->appendCost(mid, ledger);
    }
    OpCounts ops;
    ops.aluOps = outputShape(in).elems() * 2; // add + relu
    ledger.add(Stage::Recovering, ops);
}

void
ResidualBlock::appendAuxCost(const Shape &in, CostLedger &ledger) const
{
    Shape mid = conv1_->outputShape(in);
    bn1_->appendAuxCost(mid, ledger);
    relu1_->appendAuxCost(mid, ledger);
    bn2_->appendAuxCost(mid, ledger);
    if (projBn_)
        projBn_->appendAuxCost(mid, ledger);
    OpCounts ops;
    ops.aluOps = outputShape(in).elems() * 2; // residual add + relu
    ledger.add(Stage::Recovering, ops);
}

LayerFootprint
ResidualBlock::footprint(const Shape &in) const
{
    LayerFootprint fp = Layer::footprint(in);
    Shape mid = conv1_->outputShape(in);
    fp.scratchBytes = mid.elems() + conv2_->footprint(mid).scratchBytes;
    return fp;
}

void
ResidualBlock::collectConvs(std::vector<Conv2D *> &out)
{
    out.push_back(conv1_.get());
    out.push_back(conv2_.get());
    if (proj_)
        out.push_back(proj_.get());
}

} // namespace genreuse
