#include "loss.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/tensor_ops.h"

namespace genreuse {

LossResult
softmaxCrossEntropy(const Tensor &logits, const std::vector<int> &labels)
{
    GENREUSE_REQUIRE(logits.shape().rank() == 2, "logits must be rank-2");
    const size_t n = logits.shape().rows(), k = logits.shape().cols();
    GENREUSE_REQUIRE(labels.size() == n, "label count ", labels.size(),
                     " != batch ", n);

    Tensor probs = softmaxRows(logits);
    LossResult res;
    res.gradLogits = Tensor(logits.shape());
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) {
        int y = labels[r];
        GENREUSE_REQUIRE(y >= 0 && static_cast<size_t>(y) < k,
                         "label out of range: ", y);
        double p = std::max(1e-12, static_cast<double>(probs.at2(r, y)));
        total -= std::log(p);

        size_t best = 0;
        for (size_t c = 0; c < k; ++c) {
            float g = probs.at2(r, c);
            if (g > probs.at2(r, best))
                best = c;
            res.gradLogits.at2(r, c) =
                (g - (static_cast<size_t>(y) == c ? 1.0f : 0.0f)) /
                static_cast<float>(n);
        }
        if (best == static_cast<size_t>(y))
            res.correct++;
    }
    res.loss = total / static_cast<double>(n);
    return res;
}

double
accuracy(const Tensor &logits, const std::vector<int> &labels)
{
    const size_t n = logits.shape().rows(), k = logits.shape().cols();
    GENREUSE_REQUIRE(labels.size() == n, "label count mismatch");
    size_t correct = 0;
    for (size_t r = 0; r < n; ++r) {
        size_t best = 0;
        for (size_t c = 1; c < k; ++c)
            if (logits.at2(r, c) > logits.at2(r, best))
                best = c;
        if (labels[r] >= 0 && best == static_cast<size_t>(labels[r]))
            correct++;
    }
    return n == 0 ? 0.0 : static_cast<double>(correct) / n;
}

std::vector<double>
maxSoftmax(const Tensor &logits)
{
    Tensor probs = softmaxRows(logits);
    const size_t n = probs.shape().rows(), k = probs.shape().cols();
    std::vector<double> out(n, 0.0);
    for (size_t r = 0; r < n; ++r) {
        float m = probs.at2(r, 0);
        for (size_t c = 1; c < k; ++c)
            m = std::max(m, probs.at2(r, c));
        out[r] = m;
    }
    return out;
}

double
oodDetectionRate(const Tensor &logits, double threshold)
{
    auto scores = maxSoftmax(logits);
    if (scores.empty())
        return 0.0;
    size_t flagged = 0;
    for (double s : scores)
        if (s < threshold)
            flagged++;
    return static_cast<double>(flagged) / scores.size();
}

} // namespace genreuse
