#include "serialize.h"

#include <cstdint>
#include <fstream>

#include "common/logging.h"

namespace genreuse {

namespace {

constexpr uint32_t kMagic = 0x47525a53; // "GRZS"
constexpr uint32_t kVersion = 1;

void
writeU32(std::ostream &os, uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU64(std::ostream &os, uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

uint32_t
readU32(std::istream &is)
{
    uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    GENREUSE_REQUIRE(is.good(), "truncated stream");
    return v;
}

uint64_t
readU64(std::istream &is)
{
    uint64_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    GENREUSE_REQUIRE(is.good(), "truncated stream");
    return v;
}

} // namespace

void
writeTensor(std::ostream &os, const Tensor &t)
{
    writeU64(os, t.shape().rank());
    for (size_t i = 0; i < t.shape().rank(); ++i)
        writeU64(os, t.shape().dim(i));
    os.write(reinterpret_cast<const char *>(t.data()),
             static_cast<std::streamsize>(t.size() * sizeof(float)));
}

Tensor
readTensor(std::istream &is)
{
    uint64_t rank = readU64(is);
    GENREUSE_REQUIRE(rank <= Shape::kMaxRank, "implausible tensor rank ",
                     rank);
    std::vector<size_t> dims(rank);
    for (auto &d : dims) {
        d = readU64(is);
        GENREUSE_REQUIRE(d <= (1ull << 32), "implausible dimension ", d);
    }
    Tensor t{Shape(dims)};
    is.read(reinterpret_cast<char *>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    GENREUSE_REQUIRE(is.good(), "truncated tensor data");
    return t;
}

void
saveParameters(Network &net, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    GENREUSE_REQUIRE(os.is_open(), "cannot open ", path, " for writing");
    auto params = net.params();
    writeU32(os, kMagic);
    writeU32(os, kVersion);
    writeU64(os, params.size());
    for (auto *p : params)
        writeTensor(os, p->value);
    GENREUSE_REQUIRE(os.good(), "write failure on ", path);
}

void
loadParameters(Network &net, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    GENREUSE_REQUIRE(is.is_open(), "cannot open ", path, " for reading");
    GENREUSE_REQUIRE(readU32(is) == kMagic, "bad magic in ", path);
    uint32_t version = readU32(is);
    GENREUSE_REQUIRE(version == kVersion, "unsupported version ", version);

    auto params = net.params();
    uint64_t count = readU64(is);
    GENREUSE_REQUIRE(count == params.size(), "parameter count mismatch: ",
                     "file has ", count, ", network has ", params.size());
    for (auto *p : params) {
        Tensor t = readTensor(is);
        GENREUSE_REQUIRE(t.shape() == p->value.shape(),
                         "parameter shape mismatch: file ",
                         t.shape().toString(), " vs network ",
                         p->value.shape().toString());
        p->value = std::move(t);
    }
}

void
writeHashFamily(std::ostream &os, const HashFamily &family)
{
    writeTensor(os, family.vectors());
    writeU64(os, family.biases().size());
    os.write(reinterpret_cast<const char *>(family.biases().data()),
             static_cast<std::streamsize>(family.biases().size() *
                                          sizeof(float)));
}

HashFamily
readHashFamily(std::istream &is)
{
    Tensor vectors = readTensor(is);
    uint64_t n = readU64(is);
    GENREUSE_REQUIRE(n == vectors.shape().rows(),
                     "bias count mismatches hash vector count");
    std::vector<float> biases(n);
    is.read(reinterpret_cast<char *>(biases.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    GENREUSE_REQUIRE(is.good(), "truncated hash family");
    return HashFamily(std::move(vectors), std::move(biases));
}

} // namespace genreuse
