#include "pooling.h"

#include "common/logging.h"

namespace genreuse {

namespace {

void
checkPoolInput(const Shape &in, size_t size, const char *what)
{
    GENREUSE_REQUIRE(in.rank() == 4, what, " input must be NCHW");
    GENREUSE_REQUIRE(in.height() >= size && in.width() >= size, what,
                     " window ", size, " larger than input ", in.toString());
}

size_t
poolOut(size_t in, size_t size, size_t stride)
{
    return (in - size) / stride + 1;
}

} // namespace

MaxPool2D::MaxPool2D(std::string name, size_t size, size_t stride)
    : Layer(std::move(name)), size_(size), stride_(stride)
{
    GENREUSE_REQUIRE(size >= 1 && stride >= 1, "bad pooling parameters");
}

Tensor
MaxPool2D::forward(const Tensor &x, bool training)
{
    checkPoolInput(x.shape(), size_, "MaxPool2D");
    const Shape &s = x.shape();
    size_t oh = poolOut(s.height(), size_, stride_);
    size_t ow = poolOut(s.width(), size_, stride_);
    Tensor y({s.batch(), s.channels(), oh, ow});
    argmax_.assign(y.size(), 0);

    size_t out = 0;
    for (size_t b = 0; b < s.batch(); ++b) {
        for (size_t c = 0; c < s.channels(); ++c) {
            for (size_t yy = 0; yy < oh; ++yy) {
                for (size_t xx = 0; xx < ow; ++xx, ++out) {
                    float best = x.at4(b, c, yy * stride_, xx * stride_);
                    size_t best_h = yy * stride_, best_w = xx * stride_;
                    for (size_t kh = 0; kh < size_; ++kh) {
                        for (size_t kw = 0; kw < size_; ++kw) {
                            float v = x.at4(b, c, yy * stride_ + kh,
                                            xx * stride_ + kw);
                            if (v > best) {
                                best = v;
                                best_h = yy * stride_ + kh;
                                best_w = xx * stride_ + kw;
                            }
                        }
                    }
                    y[out] = best;
                    argmax_[out] = static_cast<uint32_t>(
                        ((b * s.channels() + c) * s.height() + best_h) *
                            s.width() +
                        best_w);
                }
            }
        }
    }
    if (training) {
        cachedInShape_ = s;
        haveCache_ = true;
    }
    return y;
}

Tensor
MaxPool2D::backward(const Tensor &grad_out)
{
    GENREUSE_REQUIRE(haveCache_, "MaxPool2D::backward without forward");
    Tensor gx(cachedInShape_);
    for (size_t i = 0; i < grad_out.size(); ++i)
        gx[argmax_[i]] += grad_out[i];
    haveCache_ = false;
    return gx;
}

Shape
MaxPool2D::outputShape(const Shape &in) const
{
    checkPoolInput(in, size_, "MaxPool2D");
    return Shape({in.batch(), in.channels(),
                  poolOut(in.height(), size_, stride_),
                  poolOut(in.width(), size_, stride_)});
}

void
MaxPool2D::appendCost(const Shape &in, CostLedger &ledger) const
{
    OpCounts ops;
    ops.aluOps = outputShape(in).elems() * size_ * size_;
    ledger.add(Stage::Recovering, ops);
}

AvgPool2D::AvgPool2D(std::string name, size_t size, size_t stride)
    : Layer(std::move(name)), size_(size), stride_(stride)
{
    GENREUSE_REQUIRE(size >= 1 && stride >= 1, "bad pooling parameters");
}

Tensor
AvgPool2D::forward(const Tensor &x, bool training)
{
    checkPoolInput(x.shape(), size_, "AvgPool2D");
    const Shape &s = x.shape();
    size_t oh = poolOut(s.height(), size_, stride_);
    size_t ow = poolOut(s.width(), size_, stride_);
    Tensor y({s.batch(), s.channels(), oh, ow});
    const float inv = 1.0f / static_cast<float>(size_ * size_);

    for (size_t b = 0; b < s.batch(); ++b)
        for (size_t c = 0; c < s.channels(); ++c)
            for (size_t yy = 0; yy < oh; ++yy)
                for (size_t xx = 0; xx < ow; ++xx) {
                    float sum = 0.0f;
                    for (size_t kh = 0; kh < size_; ++kh)
                        for (size_t kw = 0; kw < size_; ++kw)
                            sum += x.at4(b, c, yy * stride_ + kh,
                                         xx * stride_ + kw);
                    y.at4(b, c, yy, xx) = sum * inv;
                }
    if (training) {
        cachedInShape_ = s;
        haveCache_ = true;
    }
    return y;
}

Tensor
AvgPool2D::backward(const Tensor &grad_out)
{
    GENREUSE_REQUIRE(haveCache_, "AvgPool2D::backward without forward");
    const Shape &s = cachedInShape_;
    size_t oh = poolOut(s.height(), size_, stride_);
    size_t ow = poolOut(s.width(), size_, stride_);
    Tensor gx(s);
    const float inv = 1.0f / static_cast<float>(size_ * size_);
    for (size_t b = 0; b < s.batch(); ++b)
        for (size_t c = 0; c < s.channels(); ++c)
            for (size_t yy = 0; yy < oh; ++yy)
                for (size_t xx = 0; xx < ow; ++xx) {
                    float g = grad_out.at4(b, c, yy, xx) * inv;
                    for (size_t kh = 0; kh < size_; ++kh)
                        for (size_t kw = 0; kw < size_; ++kw)
                            gx.at4(b, c, yy * stride_ + kh,
                                   xx * stride_ + kw) += g;
                }
    haveCache_ = false;
    return gx;
}

Shape
AvgPool2D::outputShape(const Shape &in) const
{
    checkPoolInput(in, size_, "AvgPool2D");
    return Shape({in.batch(), in.channels(),
                  poolOut(in.height(), size_, stride_),
                  poolOut(in.width(), size_, stride_)});
}

void
AvgPool2D::appendCost(const Shape &in, CostLedger &ledger) const
{
    OpCounts ops;
    ops.aluOps = outputShape(in).elems() * size_ * size_;
    ledger.add(Stage::Recovering, ops);
}

Tensor
GlobalAvgPool2D::forward(const Tensor &x, bool training)
{
    GENREUSE_REQUIRE(x.shape().rank() == 4, "GlobalAvgPool2D input NCHW");
    const Shape &s = x.shape();
    Tensor y({s.batch(), s.channels()});
    const float inv = 1.0f / static_cast<float>(s.height() * s.width());
    for (size_t b = 0; b < s.batch(); ++b)
        for (size_t c = 0; c < s.channels(); ++c) {
            float sum = 0.0f;
            for (size_t h = 0; h < s.height(); ++h)
                for (size_t w = 0; w < s.width(); ++w)
                    sum += x.at4(b, c, h, w);
            y.at2(b, c) = sum * inv;
        }
    if (training) {
        cachedInShape_ = s;
        haveCache_ = true;
    }
    return y;
}

Tensor
GlobalAvgPool2D::backward(const Tensor &grad_out)
{
    GENREUSE_REQUIRE(haveCache_, "GlobalAvgPool2D::backward without forward");
    const Shape &s = cachedInShape_;
    Tensor gx(s);
    const float inv = 1.0f / static_cast<float>(s.height() * s.width());
    for (size_t b = 0; b < s.batch(); ++b)
        for (size_t c = 0; c < s.channels(); ++c) {
            float g = grad_out.at2(b, c) * inv;
            for (size_t h = 0; h < s.height(); ++h)
                for (size_t w = 0; w < s.width(); ++w)
                    gx.at4(b, c, h, w) = g;
        }
    haveCache_ = false;
    return gx;
}

Shape
GlobalAvgPool2D::outputShape(const Shape &in) const
{
    return Shape({in.batch(), in.channels()});
}

void
GlobalAvgPool2D::appendCost(const Shape &in, CostLedger &ledger) const
{
    OpCounts ops;
    ops.aluOps = in.elems();
    ledger.add(Stage::Recovering, ops);
}

} // namespace genreuse
