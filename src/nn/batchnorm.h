/**
 * @file
 * Per-channel batch normalization for NCHW activations. At deployment
 * the paper folds BN into the preceding convolution; foldInto() does
 * exactly that transformation.
 */

#ifndef GENREUSE_NN_BATCHNORM_H
#define GENREUSE_NN_BATCHNORM_H

#include "conv2d.h"
#include "layer.h"

namespace genreuse {

/** y = gamma * (x - mean) / sqrt(var + eps) + beta, per channel. */
class BatchNorm2D : public Layer
{
  public:
    BatchNorm2D(std::string name, size_t channels, float momentum = 0.9f,
                float eps = 1e-5f);

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;
    Shape outputShape(const Shape &in) const override { return in; }
    void appendCost(const Shape &in, CostLedger &ledger) const override;

    Param &gamma() { return gamma_; }
    Param &beta() { return beta_; }
    const Tensor &runningMean() const { return runningMean_; }
    const Tensor &runningVar() const { return runningVar_; }

    /**
     * Fold this BN's running statistics into a convolution that feeds
     * it: w' = w * gamma/sqrt(var+eps), b' = (b - mean) * gamma/
     * sqrt(var+eps) + beta. After folding, this layer can be dropped
     * (it becomes the identity for the folded conv's outputs).
     */
    void foldInto(Conv2D &conv) const;

  private:
    size_t channels_;
    float momentum_, eps_;
    Param gamma_;
    Param beta_;
    Tensor runningMean_;
    Tensor runningVar_;

    // Backward caches.
    Tensor cachedXHat_;
    Tensor cachedInvStd_;
    Shape cachedShape_;
    bool haveCache_ = false;
};

} // namespace genreuse

#endif // GENREUSE_NN_BATCHNORM_H
