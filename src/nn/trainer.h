/**
 * @file
 * Training and evaluation driver: epoch loops, batched evaluation, and
 * the fine-tuning entry point used after a reuse pattern is applied.
 */

#ifndef GENREUSE_NN_TRAINER_H
#define GENREUSE_NN_TRAINER_H

#include "data/dataset.h"
#include "network.h"
#include "sgd.h"

namespace genreuse {

/** Result of one training run. */
struct TrainReport
{
    std::vector<double> epochLoss;
    std::vector<double> epochAccuracy; //!< on the training set
    double finalTrainAccuracy = 0.0;
};

/** Training hyperparameters beyond the optimizer's. */
struct TrainConfig
{
    size_t epochs = 5;
    size_t batchSize = 10; //!< the paper's batch size
    SgdConfig sgd;
    uint64_t shuffleSeed = 1234;
};

/** Train @p net on @p data with softmax cross-entropy. */
TrainReport train(Network &net, const Dataset &data,
                  const TrainConfig &config);

/** Classification accuracy of @p net on @p data (batched, eval mode). */
double evaluate(Network &net, const Dataset &data, size_t batch_size = 32);

/** Forward the whole dataset and return the stacked logits. */
Tensor evaluateLogits(Network &net, const Dataset &data,
                      size_t batch_size = 32);

} // namespace genreuse

#endif // GENREUSE_NN_TRAINER_H
