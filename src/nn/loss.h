/**
 * @file
 * Softmax cross-entropy loss and classification metrics, including the
 * max-softmax statistic used for OOD detection (§5.3.6).
 */

#ifndef GENREUSE_NN_LOSS_H
#define GENREUSE_NN_LOSS_H

#include <vector>

#include "tensor/tensor.h"

namespace genreuse {

/** Result of a softmax cross-entropy evaluation on one batch. */
struct LossResult
{
    double loss = 0.0;       //!< mean cross-entropy
    Tensor gradLogits;       //!< dLoss/dLogits, same shape as logits
    size_t correct = 0;      //!< argmax matches label
};

/**
 * Mean softmax cross-entropy over a batch of logits (N x classes) with
 * integer labels.
 */
LossResult softmaxCrossEntropy(const Tensor &logits,
                               const std::vector<int> &labels);

/** Fraction of rows whose argmax equals the label. */
double accuracy(const Tensor &logits, const std::vector<int> &labels);

/**
 * Per-row maximum softmax probabilities — the OOD detection score.
 * A row is flagged OOD when its max probability falls below the
 * threshold (the paper uses 0.7).
 */
std::vector<double> maxSoftmax(const Tensor &logits);

/** Fraction of rows flagged OOD under the threshold rule. */
double oodDetectionRate(const Tensor &logits, double threshold = 0.7);

} // namespace genreuse

#endif // GENREUSE_NN_LOSS_H
