/**
 * @file
 * Activation layers. ReLU is the only nonlinearity used by the paper's
 * networks.
 */

#ifndef GENREUSE_NN_ACTIVATION_H
#define GENREUSE_NN_ACTIVATION_H

#include "layer.h"

namespace genreuse {

/** Elementwise max(x, 0). */
class ReLU : public Layer
{
  public:
    explicit ReLU(std::string name) : Layer(std::move(name)) {}

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    Shape outputShape(const Shape &in) const override { return in; }
    void appendCost(const Shape &in, CostLedger &ledger) const override;

  private:
    std::vector<uint8_t> mask_;
    Shape cachedShape_;
    bool haveCache_ = false;
};

} // namespace genreuse

#endif // GENREUSE_NN_ACTIVATION_H
