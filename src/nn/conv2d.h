/**
 * @file
 * im2col-GEMM convolution with a pluggable multiplication strategy.
 * The exact strategy is a plain blocked GEMM; the reuse engine
 * (src/core) supplies alternative strategies that cluster the im2col
 * rows/columns and multiply centroids only. Backward always uses exact
 * gradients (reuse is an inference-time approximation; training and
 * fine-tuning follow the exact path, as in the paper).
 */

#ifndef GENREUSE_NN_CONV2D_H
#define GENREUSE_NN_CONV2D_H

#include <memory>

#include "layer.h"
#include "tensor/im2col.h"

namespace genreuse {

/**
 * Strategy interface for the X x W product inside a convolution.
 * Implementations must report their op counts to the ledger when one
 * is supplied.
 */
class ConvAlgo
{
  public:
    virtual ~ConvAlgo() = default;

    /**
     * Compute Y = X x W (N x Din times Din x M).
     * @param x im2col matrix in the default channel-major layout
     * @param w weight matrix
     * @param geom convolution geometry (for layout-aware strategies)
     * @param ledger optional per-stage cost accounting sink
     */
    virtual Tensor multiply(const Tensor &x, const Tensor &w,
                            const ConvGeometry &geom,
                            CostLedger *ledger) = 0;

    /** Short description for reports ("exact", "reuse[...]"). */
    virtual std::string describe() const = 0;
};

/** The exact GEMM strategy (CMSIS-NN style baseline). */
class ExactConvAlgo : public ConvAlgo
{
  public:
    Tensor multiply(const Tensor &x, const Tensor &w,
                    const ConvGeometry &geom, CostLedger *ledger) override;
    std::string describe() const override { return "exact"; }
};

/** 2-D convolution layer. */
class Conv2D : public Layer
{
  public:
    /**
     * @param name layer name (used by reports and pattern selection)
     * @param in_channels input channel count
     * @param out_channels number of kernels (M)
     * @param kernel square kernel size
     * @param stride convolution stride
     * @param pad zero padding on each border
     */
    Conv2D(std::string name, size_t in_channels, size_t out_channels,
           size_t kernel, size_t stride, size_t pad, Rng &rng);

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;
    Shape outputShape(const Shape &in) const override;
    void appendCost(const Shape &in, CostLedger &ledger) const override;

    /** Convolution work is measured at runtime, not statically. */
    void
    appendAuxCost(const Shape &in, CostLedger &ledger) const override
    {
        (void)in;
        (void)ledger;
    }

    LayerFootprint footprint(const Shape &in) const override;

    /** Replace the multiplication strategy (exact by default). */
    void setAlgo(std::shared_ptr<ConvAlgo> algo);

    /** Current strategy. */
    ConvAlgo &algo() { return *algo_; }

    /** Restore the exact strategy. */
    void resetAlgo();

    /** Geometry for a given input shape. */
    ConvGeometry geometry(const Shape &in) const;

    /** Din x M weight matrix view of the kernel parameter. */
    Tensor weightMatrix() const;

    /** Kernel parameter (M, C, KH, KW). */
    Param &kernel() { return kernel_; }
    Param &bias() { return bias_; }

    size_t inChannels() const { return inChannels_; }
    size_t outChannels() const { return outChannels_; }
    size_t kernelSize() const { return kernelSize_; }
    size_t stride() const { return stride_; }
    size_t pad() const { return pad_; }

    /**
     * Attach a cost ledger that forward() fills with this layer's
     * op counts (including the strategy's reuse stages). Pass nullptr
     * to detach.
     */
    void setLedger(CostLedger *ledger) { ledger_ = ledger; }

    /** im2col matrix of the last forward() input (for hash learning). */
    const Tensor &lastIm2col() const { return cachedX_; }

    /** Geometry of the last forward() input. */
    const ConvGeometry &lastGeometry() const { return cachedGeom_; }

    void collectConvs(std::vector<Conv2D *> &out) override
    {
        out.push_back(this);
    }

  private:
    size_t inChannels_, outChannels_, kernelSize_, stride_, pad_;
    Param kernel_;
    Param bias_;
    std::shared_ptr<ConvAlgo> algo_;
    CostLedger *ledger_ = nullptr;

    // Caches for backward.
    Tensor cachedX_;
    ConvGeometry cachedGeom_;
    bool haveCache_ = false;
};

} // namespace genreuse

#endif // GENREUSE_NN_CONV2D_H
