#include "sgd.h"

#include "common/logging.h"

namespace genreuse {

Sgd::Sgd(std::vector<Param *> params, SgdConfig config)
    : params_(std::move(params)), config_(config),
      lr_(config.learningRate)
{
    GENREUSE_REQUIRE(!params_.empty(), "optimizer needs parameters");
    velocity_.reserve(params_.size());
    for (auto *p : params_)
        velocity_.emplace_back(p->value.shape());
}

void
Sgd::step()
{
    for (size_t i = 0; i < params_.size(); ++i) {
        Param *p = params_[i];
        Tensor &v = velocity_[i];
        const float mu = static_cast<float>(config_.momentum);
        const float wd = static_cast<float>(config_.weightDecay);
        const float lr = static_cast<float>(lr_);
        for (size_t j = 0; j < p->value.size(); ++j) {
            float g = p->grad[j] + wd * p->value[j];
            v[j] = mu * v[j] + g;
            p->value[j] -= lr * v[j];
        }
        p->zeroGrad();
    }
}

void
Sgd::endEpoch()
{
    epoch_++;
    if (config_.lrDecayEveryEpochs > 0 &&
        epoch_ % config_.lrDecayEveryEpochs == 0) {
        lr_ *= config_.lrDecayFactor;
    }
}

} // namespace genreuse
