#include "conv2d.h"

#include <algorithm>
#include <cmath>

#include "common/eventlog.h"
#include "common/logging.h"
#include "common/profiler.h"
#include "tensor/gemm.h"

namespace genreuse {

Tensor
ExactConvAlgo::multiply(const Tensor &x, const Tensor &w,
                        const ConvGeometry &geom, CostLedger *ledger)
{
    (void)geom;
    profiler::ProfSpan span("exact.gemm");
    Tensor y = matmul(x, w);
    OpCounts ops;
    ops.macs = x.shape().rows() * x.shape().cols() * w.shape().cols();
    reportOps(ledger, Stage::Gemm, ops);
    return y;
}

Conv2D::Conv2D(std::string name, size_t in_channels, size_t out_channels,
               size_t kernel, size_t stride, size_t pad, Rng &rng)
    : Layer(std::move(name)),
      inChannels_(in_channels),
      outChannels_(out_channels),
      kernelSize_(kernel),
      stride_(stride),
      pad_(pad),
      kernel_(Tensor::randomNormal(
          {out_channels, in_channels, kernel, kernel}, rng, 0.0f,
          std::sqrt(2.0f / static_cast<float>(in_channels * kernel *
                                              kernel)))),
      bias_(Tensor({out_channels})),
      algo_(std::make_shared<ExactConvAlgo>())
{
}

ConvGeometry
Conv2D::geometry(const Shape &in) const
{
    GENREUSE_REQUIRE(in.rank() == 4, "Conv2D input must be NCHW, got ",
                     in.toString());
    GENREUSE_REQUIRE(in.channels() == inChannels_, "Conv2D '", name(),
                     "' expects ", inChannels_, " channels, got ",
                     in.channels());
    ConvGeometry g;
    g.batch = in.batch();
    g.inChannels = inChannels_;
    g.inHeight = in.height();
    g.inWidth = in.width();
    g.outChannels = outChannels_;
    g.kernelH = kernelSize_;
    g.kernelW = kernelSize_;
    g.stride = stride_;
    g.pad = pad_;
    return g;
}

Tensor
Conv2D::weightMatrix() const
{
    return kernelToMatrix(kernel_.value);
}

Tensor
Conv2D::forward(const Tensor &x, bool training)
{
    trace::TraceScope tscope(name());
    profiler::ProfSpan pspan("conv.forward");
    // Unlike TraceScope this is active whenever the journal is on, so
    // guard/fault/reuse events inside the multiply carry the layer
    // name into postmortem dumps.
    eventlog::LayerScope escope(name());
    ConvGeometry geom = geometry(x.shape());
    Tensor cols = [&] {
        profiler::ProfSpan span("conv.im2col");
        return im2col(x, geom);
    }();
    {
        OpCounts ops;
        ops.elemMoves = cols.size(); // one element move per matrix cell
        reportOps(ledger_, Stage::Transformation, ops);
    }

    Tensor w = weightMatrix();
    Tensor y = algo_->multiply(cols, w, geom, ledger_);

    // Bias.
    {
        profiler::ProfSpan span("conv.bias");
        const size_t n = y.shape().rows(), m = y.shape().cols();
        for (size_t r = 0; r < n; ++r)
            for (size_t c = 0; c < m; ++c)
                y.at2(r, c) += bias_.value[c];
        OpCounts ops;
        ops.aluOps = n * m;      // bias adds
        ops.elemMoves = n * m;   // fold back into activation layout
        reportOps(ledger_, Stage::Recovering, ops);
    }

    if (training) {
        cachedX_ = std::move(cols);
        cachedGeom_ = geom;
        haveCache_ = true;
    } else {
        // Keep the im2col matrix for hash-family fitting as well.
        cachedX_ = std::move(cols);
        cachedGeom_ = geom;
        haveCache_ = false;
    }
    return gemmOutputToActivation(y, geom);
}

Tensor
Conv2D::backward(const Tensor &grad_out)
{
    GENREUSE_REQUIRE(haveCache_, "Conv2D::backward without training forward");
    const ConvGeometry &geom = cachedGeom_;
    Tensor gy = activationToGemmOutput(grad_out, geom);

    // Bias gradient: column sums.
    const size_t n = gy.shape().rows(), m = gy.shape().cols();
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < m; ++c)
            bias_.grad[c] += gy.at2(r, c);

    // Weight gradient: X^T x gY, folded back to kernel layout.
    Tensor gw({geom.cols(), m});
    gemmTransA(cachedX_, gy, gw);
    Tensor gk = matrixToKernel(gw, geom);
    for (size_t i = 0; i < gk.size(); ++i)
        kernel_.grad[i] += gk[i];

    // Input gradient: gY x W^T, scattered by col2im.
    Tensor w = weightMatrix();
    Tensor gx_cols({n, geom.cols()});
    gemmTransB(gy, w, gx_cols);
    haveCache_ = false;
    return col2im(gx_cols, geom);
}

std::vector<Param *>
Conv2D::params()
{
    return {&kernel_, &bias_};
}

Shape
Conv2D::outputShape(const Shape &in) const
{
    ConvGeometry g = geometry(in);
    return Shape({g.batch, g.outChannels, g.outHeight(), g.outWidth()});
}

void
Conv2D::appendCost(const Shape &in, CostLedger &ledger) const
{
    ConvGeometry g = geometry(in);
    OpCounts tf;
    tf.elemMoves = g.rows() * g.cols();
    ledger.add(Stage::Transformation, tf);
    OpCounts mm;
    mm.macs = g.macs();
    ledger.add(Stage::Gemm, mm);
    OpCounts rc;
    rc.aluOps = g.rows() * g.outChannels;
    rc.elemMoves = g.rows() * g.outChannels;
    ledger.add(Stage::Recovering, rc);
}

LayerFootprint
Conv2D::footprint(const Shape &in) const
{
    LayerFootprint fp = Layer::footprint(in);
    ConvGeometry g = geometry(in);
    // CMSIS-NN style kernels stream the im2col expansion through a
    // small row-tile buffer rather than materializing the full matrix;
    // reuse additionally keeps per-row signatures.
    constexpr size_t tile_rows = 8;
    fp.scratchBytes =
        g.cols() * std::min(g.rows(), tile_rows) + g.rows();
    return fp;
}

void
Conv2D::setAlgo(std::shared_ptr<ConvAlgo> algo)
{
    GENREUSE_REQUIRE(algo != nullptr, "null ConvAlgo");
    algo_ = std::move(algo);
}

void
Conv2D::resetAlgo()
{
    algo_ = std::make_shared<ExactConvAlgo>();
}

} // namespace genreuse
