/**
 * @file
 * Learned hash vectors — this reproduction's stand-in for TREC's
 * backprop-learned LSH (§3.1 note ii, footnote 1).
 *
 * TREC learns the hash hyperplanes jointly with DNN training; the
 * observable effect is that learned hashing yields higher, far stabler
 * accuracy than random hashing. We reproduce that effect
 * deterministically: the hash vectors are the top-H principal
 * directions of the neuron-vector population (with a centering bias so
 * each hyperplane splits the population near its median). Splitting
 * along maximum-variance directions minimizes the expected
 * within-cluster variance — exactly the quantity that the paper's
 * accuracy bound says drives accuracy loss. See DESIGN.md for the
 * substitution rationale.
 */

#ifndef GENREUSE_LSH_LEARNED_HASH_H
#define GENREUSE_LSH_LEARNED_HASH_H

#include "lsh.h"
#include "tensor/matrix_view.h"

namespace genreuse {

/**
 * Learn @p num_functions hash hyperplanes from a sample of neuron
 * vectors by PCA (orthogonal power iteration with deflation on the
 * sample covariance).
 *
 * @param items training sample of neuron vectors (e.g. from im2col of
 *              a few training images)
 * @param num_functions H, number of hyperplanes (1..64)
 * @param iters power-iteration steps per component
 */
HashFamily learnHashFamilyPca(const StridedItems &items,
                              size_t num_functions, size_t iters = 50);

/**
 * Mean within-cluster scatter produced by a family on a sample —
 * the metric PCA hashing improves versus random hashing; exposed for
 * the learned-vs-random ablation bench.
 */
double familyScatterOnSample(const HashFamily &family,
                             const StridedItems &items);

} // namespace genreuse

#endif // GENREUSE_LSH_LEARNED_HASH_H
