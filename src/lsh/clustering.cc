#include "clustering.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace genreuse {

double
ClusterResult::redundancyRatio() const
{
    if (numItems() == 0)
        return 0.0;
    return 1.0 - static_cast<double>(numClusters()) /
                 static_cast<double>(numItems());
}

ClusterResult
clusterBySignature(const StridedItems &items, const HashFamily &family)
{
    return clusterSignatures(items, family.signatures(items));
}

ClusterResult
clusterSignatures(const StridedItems &items,
                  const std::vector<uint64_t> &sigs)
{
    GENREUSE_REQUIRE(sigs.size() == items.count,
                     "signature count mismatches item count");
    ClusterResult result;
    result.assignments.resize(items.count);

    std::unordered_map<uint64_t, uint32_t> ids;
    ids.reserve(items.count);
    for (size_t i = 0; i < items.count; ++i) {
        auto [it, inserted] =
            ids.emplace(sigs[i], static_cast<uint32_t>(ids.size()));
        result.assignments[i] = it->second;
        (void)inserted;
    }

    const size_t nc = ids.size();
    result.sizes.assign(nc, 0);
    result.centroids = Tensor({nc == 0 ? 1 : nc, items.length});
    result.centroids.zero();
    for (size_t i = 0; i < items.count; ++i) {
        uint32_t c = result.assignments[i];
        result.sizes[c]++;
        float *dst = result.centroids.data() + c * items.length;
        for (size_t j = 0; j < items.length; ++j)
            dst[j] += items.at(i, j);
    }
    for (size_t c = 0; c < nc; ++c) {
        float inv = 1.0f / static_cast<float>(result.sizes[c]);
        float *dst = result.centroids.data() + c * items.length;
        for (size_t j = 0; j < items.length; ++j)
            dst[j] *= inv;
    }
    if (nc == 0)
        result.centroids = Tensor({0, items.length}, std::vector<float>{});
    return result;
}

namespace {

/**
 * Largest eigenvalue of the covariance matrix of one cluster's items,
 * via power iteration performed implicitly (never materializing the
 * L x L covariance): Cov * v = (1/m) Σ_i d_i (d_i . v), d_i = x_i - μ.
 */
double
clusterLambdaMax(const StridedItems &items, const ClusterResult &clusters,
                 uint32_t cluster, size_t max_iters)
{
    const size_t l = items.length;
    const size_t m = clusters.sizes[cluster];
    if (m <= 1)
        return 0.0;

    const float *mu = clusters.centroids.data() + cluster * l;

    // Deterministic start vector; re-seeded from the cluster id so
    // different clusters don't share a degenerate start.
    std::vector<double> v(l);
    for (size_t j = 0; j < l; ++j)
        v[j] = 1.0 + 0.01 * static_cast<double>((j * 2654435761u + cluster) % 97);
    double norm = 0.0;
    for (double x : v)
        norm += x * x;
    norm = std::sqrt(norm);
    for (double &x : v)
        x /= norm;

    double lambda = 0.0;
    std::vector<double> av(l);
    for (size_t iter = 0; iter < max_iters; ++iter) {
        std::fill(av.begin(), av.end(), 0.0);
        for (size_t i = 0; i < items.count; ++i) {
            if (clusters.assignments[i] != cluster)
                continue;
            double dot = 0.0;
            for (size_t j = 0; j < l; ++j)
                dot += (items.at(i, j) - mu[j]) * v[j];
            for (size_t j = 0; j < l; ++j)
                av[j] += (items.at(i, j) - mu[j]) * dot;
        }
        for (size_t j = 0; j < l; ++j)
            av[j] /= static_cast<double>(m);

        double av_norm = 0.0;
        for (double x : av)
            av_norm += x * x;
        av_norm = std::sqrt(av_norm);
        if (av_norm < 1e-12)
            return 0.0; // all points equal the centroid
        lambda = av_norm;
        for (size_t j = 0; j < l; ++j)
            v[j] = av[j] / av_norm;
    }
    return lambda;
}

} // namespace

double
clusterScatterBound(const StridedItems &items, const ClusterResult &clusters,
                    size_t max_iters)
{
    double total = 0.0;
    for (uint32_t c = 0; c < clusters.numClusters(); ++c) {
        total += clusterLambdaMax(items, clusters, c, max_iters) *
                 static_cast<double>(clusters.sizes[c]);
    }
    return total;
}

double
withinClusterScatter(const StridedItems &items, const ClusterResult &clusters)
{
    double total = 0.0;
    const size_t l = items.length;
    for (size_t i = 0; i < items.count; ++i) {
        const float *mu =
            clusters.centroids.data() + clusters.assignments[i] * l;
        for (size_t j = 0; j < l; ++j) {
            double d = items.at(i, j) - mu[j];
            total += d * d;
        }
    }
    return total;
}

} // namespace genreuse
