#include "clustering.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/arena.h"
#include "common/eventlog.h"
#include "common/faultpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/reuse_audit.h"

namespace genreuse {

double
ClusterResult::redundancyRatio() const
{
    if (numItems() == 0)
        return 0.0;
    return 1.0 - static_cast<double>(numClusters()) /
                 static_cast<double>(numItems());
}

ClusterResult
clusterBySignature(const StridedItems &items, const HashFamily &family,
                   OpCounts *ops)
{
    ClusterResult result;
    clusterBySignatureInto(items, family, result, ops);
    return result;
}

namespace {

/**
 * Group items by signature into @p result: assignments in first-seen
 * order, mean centroids, size histogram and CSR membership. Items
 * flagged in @p singleton (when non-null) bypass the signature map and
 * each get a fresh cluster of their own — the repair path for
 * non-finite rows.
 *
 * The signature -> id map is an open-addressing table in the stream
 * arena (the std::unordered_map this replaces allocated a node per
 * distinct signature on every forward). Ids are still assigned in
 * first-seen item order, so the result is identical. @p result's
 * vectors/centroids are rebuilt in place, reusing capacity.
 */
void
groupBySignature(const StridedItems &items, const uint64_t *sigs,
                 const uint8_t *singleton, ClusterResult &result,
                 OpCounts *ops)
{
    Arena &arena = Arena::forCurrentStream();
    ArenaFrame frame(arena);

    result.assignments.resize(items.count);

    // Open-addressing signature table: pow-2 size at most half full.
    size_t table_size = 16;
    while (table_size < 2 * items.count)
        table_size <<= 1;
    const size_t mask = table_size - 1;
    uint64_t *keys = arena.allocSpan<uint64_t>(table_size);
    uint32_t *vals = arena.allocSpan<uint32_t>(table_size);
    constexpr uint32_t kEmpty = UINT32_MAX;
    std::memset(vals, 0xff, table_size * sizeof(uint32_t));

    uint32_t next_id = 0;
    for (size_t i = 0; i < items.count; ++i) {
        if (singleton && singleton[i]) {
            result.assignments[i] = next_id++;
            continue;
        }
        const uint64_t sig = sigs[i];
        // Fibonacci-style mix; linear probe.
        size_t slot = static_cast<size_t>(
                          (sig ^ (sig >> 29)) * 0x9e3779b97f4a7c15ull) &
                      mask;
        while (vals[slot] != kEmpty && keys[slot] != sig)
            slot = (slot + 1) & mask;
        if (vals[slot] == kEmpty) {
            keys[slot] = sig;
            vals[slot] = next_id++;
        }
        result.assignments[i] = vals[slot];
    }

    const size_t nc = next_id;
    const simd::Ops &simd_ops = simd::ops();
    result.sizes.assign(nc, 0);
    result.centroids.resize({nc == 0 ? 1 : nc, items.length});
    result.centroids.zero();
    const bool rows_contiguous = items.contiguousRows();
    for (size_t i = 0; i < items.count; ++i) {
        uint32_t c = result.assignments[i];
        result.sizes[c]++;
        float *dst = result.centroids.data() + c * items.length;
        if (rows_contiguous) {
            simd_ops.addInto(dst, items.base + i * items.itemStride,
                             items.length);
        } else {
            for (size_t j = 0; j < items.length; ++j)
                dst[j] += items.at(i, j);
        }
    }
    for (size_t c = 0; c < nc; ++c) {
        float inv = 1.0f / static_cast<float>(result.sizes[c]);
        simd_ops.scaleInPlace(result.centroids.data() + c * items.length,
                              inv, items.length);
    }
    if (nc == 0)
        result.centroids.resize({0, items.length});

    // CSR membership: counting sort over items preserves ascending item
    // order within each cluster.
    result.memberOffsets.assign(nc + 1, 0);
    for (size_t c = 0; c < nc; ++c)
        result.memberOffsets[c + 1] = result.memberOffsets[c] +
                                      result.sizes[c];
    result.memberIndices.resize(items.count);
    size_t *cursor = arena.allocSpan<size_t>(nc + 1);
    std::memcpy(cursor, result.memberOffsets.data(),
                (nc + 1) * sizeof(size_t));
    for (size_t i = 0; i < items.count; ++i) {
        uint32_t c = result.assignments[i];
        result.memberIndices[cursor[c]++] = static_cast<uint32_t>(i);
    }

    if (ops) {
        // What the grouping actually did: one table probe/update per
        // item, a per-element accumulate per item, and a per-element
        // normalize per cluster.
        ops->tableOps += items.count;
        ops->aluOps += items.count * items.length + nc * items.length;
        ops->elemMoves += nc * items.length; // centroid panel store
    }
}

/**
 * True when some multi-member cluster's centroid carries a NaN/Inf —
 * the poisoned-mean symptom of a non-finite input row. Scanning the
 * nc x L centroid panel is much cheaper than scanning the n x L items,
 * and any non-finite member element provably propagates into its
 * cluster's mean, so this misses nothing. A singleton's non-finite
 * centroid IS its row — faithful, not poisoned — and is skipped.
 */
bool
centroidsPoisoned(const ClusterResult &r, size_t length)
{
    for (size_t c = 0; c < r.numClusters(); ++c) {
        if (r.sizes[c] <= 1)
            continue;
        const float *mu = r.centroids.data() + c * length;
        for (size_t j = 0; j < length; ++j)
            if (!std::isfinite(mu[j]))
                return true;
    }
    return false;
}

bool
rowFinite(const StridedItems &items, size_t i)
{
    for (size_t j = 0; j < items.length; ++j)
        if (!std::isfinite(items.at(i, j)))
            return false;
    return true;
}

/** Deterministic degenerate clusterings for the fault matrix. */
void
injectClusterFaults(const StridedItems &items, ClusterResult &result)
{
    using faultpoint::Fault;
    if (faultpoint::active(Fault::ClusterEmpty) && items.count > 0) {
        // A phantom size-0 cluster whose centroid is the 0/0-style
        // garbage a real empty cluster would produce. Consumers must
        // reject it via clusterTableValid, not average it in.
        faultpoint::noteFired(Fault::ClusterEmpty);
        const size_t nc = result.numClusters();
        Tensor grown({nc + 1, items.length});
        for (size_t j = 0; j < nc * items.length; ++j)
            grown.data()[j] = result.centroids.data()[j];
        for (size_t j = 0; j < items.length; ++j)
            grown.data()[nc * items.length + j] =
                std::numeric_limits<float>::infinity();
        result.centroids = std::move(grown);
        result.sizes.push_back(0);
        result.memberOffsets.push_back(result.memberOffsets.back());
    }
    if (faultpoint::active(Fault::CorruptClusterIds) &&
        items.count > 0) {
        // Seeded out-of-range bit-flips in the assignment table, AFTER
        // the CSR build so the table is inconsistent exactly the way a
        // memory corruption would leave it.
        faultpoint::noteFired(Fault::CorruptClusterIds);
        Rng rng(faultpoint::seed(Fault::CorruptClusterIds));
        const size_t flips = std::max<size_t>(1, items.count / 16);
        const uint32_t nc =
            static_cast<uint32_t>(result.numClusters());
        for (size_t k = 0; k < flips; ++k) {
            size_t i = rng.uniformInt(items.count);
            result.assignments[i] =
                nc + 1 + static_cast<uint32_t>(rng.uniformInt(1024));
        }
    }
}

} // namespace

void
clusterSignaturesInto(const StridedItems &items, const uint64_t *sigs,
                      ClusterResult &result, OpCounts *ops)
{
    profiler::ProfSpan pspan("lsh.cluster");
    Arena &arena = Arena::forCurrentStream();
    ArenaFrame frame(arena);

    const uint64_t *use = sigs;
    if (faultpoint::anyArmed() &&
        faultpoint::active(faultpoint::Fault::ClusterCollapse)) {
        // Simulate a pathological hash family: every signature
        // collides, so the whole panel becomes one giant cluster.
        faultpoint::noteFired(faultpoint::Fault::ClusterCollapse);
        uint64_t *collapsed = arena.allocSpan<uint64_t>(items.count);
        for (size_t i = 0; i < items.count; ++i)
            collapsed[i] = faultpoint::seed(faultpoint::Fault::ClusterCollapse);
        use = collapsed;
    }

    groupBySignature(items, use, nullptr, result, ops);

    if (centroidsPoisoned(result, items.length)) {
        // Rare repair path: locate the non-finite rows (full scan is
        // fine here — we only get here when poisoned) and regroup with
        // each one in a singleton cluster, leaving every other cluster
        // mean clean. One pass only: if finite rows overflow a sum to
        // Inf the table stays poisoned and the reuse kernels' validity
        // check downgrades those panels to exact GEMM instead.
        warnOnce("lsh-nonfinite-items",
                 "non-finite item rows detected during clustering; "
                 "routing them to singleton clusters");
        uint8_t *bad = arena.allocSpan<uint8_t>(items.count);
        for (size_t i = 0; i < items.count; ++i)
            bad[i] = rowFinite(items, i) ? 0 : 1;
        groupBySignature(items, use, bad, result, ops);
    }

    if (faultpoint::anyArmed())
        injectClusterFaults(items, result);

    // Realized-reuse metrics (the ReuseSense argument: measure the
    // benefit actually obtained, not just the estimate). Handles are
    // resolved once; each update is a relaxed atomic RMW.
    static metrics::Counter &calls = metrics::counter("lsh.cluster_calls");
    static metrics::Counter &items_seen = metrics::counter("lsh.items");
    static metrics::Counter &clusters_made =
        metrics::counter("lsh.clusters");
    static metrics::Gauge &redundancy =
        metrics::gauge("lsh.redundancy_ratio");
    calls.add();
    items_seen.add(result.numItems());
    clusters_made.add(result.numClusters());
    redundancy.set(result.redundancyRatio());
    audit::recordClustering(result.numItems(), result.numClusters(),
                            result.sizes.data());
    if (eventlog::enabled())
        eventlog::record(eventlog::Type::Cluster, 0,
                         result.redundancyRatio(),
                         static_cast<double>(result.numItems()), 0.0,
                         static_cast<uint32_t>(result.numClusters()));
}

void
clusterBySignatureInto(const StridedItems &items, const HashFamily &family,
                       ClusterResult &result, OpCounts *ops)
{
    if (ops)
        ops->macs += family.hashMacs(items.count);
    Arena &arena = Arena::forCurrentStream();
    ArenaFrame frame(arena);
    uint64_t *sigs = arena.allocSpan<uint64_t>(items.count);
    family.signaturesInto(items, sigs);
    clusterSignaturesInto(items, sigs, result, ops);
}

ClusterResult
clusterSignatures(const StridedItems &items,
                  const std::vector<uint64_t> &sigs, OpCounts *ops)
{
    GENREUSE_REQUIRE(sigs.size() == items.count,
                     "signature count mismatches item count");
    ClusterResult result;
    clusterSignaturesInto(items, sigs.data(), result, ops);
    return result;
}

bool
clusterTableValid(const ClusterResult &clusters)
{
    const size_t nc = clusters.numClusters();
    const size_t n = clusters.numItems();

    size_t total = 0;
    for (size_t c = 0; c < nc; ++c) {
        if (clusters.sizes[c] == 0)
            return false; // clustering never emits an empty cluster
        total += clusters.sizes[c];
    }
    if (total != n)
        return false;
    if (n > 0 && (clusters.centroids.shape().rank() != 2 ||
                  clusters.centroids.shape().dim(0) < nc))
        return false;
    for (size_t i = 0; i < n; ++i)
        if (clusters.assignments[i] >= nc)
            return false;
    if (clusters.memberOffsets.size() == nc + 1 &&
        clusters.memberOffsets[nc] != n)
        return false;

    // Multi-member means must be finite (a poisoned average); a
    // singleton's centroid is its row, so non-finite is faithful there.
    const size_t l = nc > 0 ? clusters.centroids.shape().dim(1) : 0;
    for (size_t c = 0; c < nc; ++c) {
        if (clusters.sizes[c] <= 1)
            continue;
        const float *mu = clusters.centroids.data() + c * l;
        for (size_t j = 0; j < l; ++j)
            if (!std::isfinite(mu[j]))
                return false;
    }
    return true;
}

namespace {

/**
 * Largest eigenvalue of the covariance matrix of one cluster's items,
 * via power iteration performed implicitly (never materializing the
 * L x L covariance): Cov * v = (1/m) Σ_i d_i (d_i . v), d_i = x_i - μ.
 *
 * @p members lists the cluster's item indices in ascending order, so
 * each iteration touches only the cluster's m items instead of scanning
 * the whole panel (the old O(items x clusters x iters) behavior), and
 * the float accumulation order — hence the result — is unchanged.
 */
double
clusterLambdaMax(const StridedItems &items, const ClusterResult &clusters,
                 uint32_t cluster, const uint32_t *members,
                 size_t max_iters)
{
    const size_t l = items.length;
    const size_t m = clusters.sizes[cluster];
    if (m <= 1)
        return 0.0;

    const float *mu = clusters.centroids.data() + cluster * l;

    // Deterministic start vector; re-seeded from the cluster id so
    // different clusters don't share a degenerate start.
    std::vector<double> v(l);
    for (size_t j = 0; j < l; ++j)
        v[j] = 1.0 + 0.01 * static_cast<double>((j * 2654435761u + cluster) % 97);
    double norm = 0.0;
    for (double x : v)
        norm += x * x;
    norm = std::sqrt(norm);
    for (double &x : v)
        x /= norm;

    double lambda = 0.0;
    std::vector<double> av(l);
    for (size_t iter = 0; iter < max_iters; ++iter) {
        std::fill(av.begin(), av.end(), 0.0);
        for (size_t k = 0; k < m; ++k) {
            const size_t i = members[k];
            double dot = 0.0;
            for (size_t j = 0; j < l; ++j)
                dot += (items.at(i, j) - mu[j]) * v[j];
            for (size_t j = 0; j < l; ++j)
                av[j] += (items.at(i, j) - mu[j]) * dot;
        }
        for (size_t j = 0; j < l; ++j)
            av[j] /= static_cast<double>(m);

        double av_norm = 0.0;
        for (double x : av)
            av_norm += x * x;
        av_norm = std::sqrt(av_norm);
        if (av_norm < 1e-12)
            return 0.0; // all points equal the centroid
        lambda = av_norm;
        for (size_t j = 0; j < l; ++j)
            v[j] = av[j] / av_norm;
    }
    return lambda;
}

/** Counting-sort CSR membership from assignments alone, for
 *  ClusterResults assembled without clusterSignatures(). */
void
buildMembership(const ClusterResult &clusters,
                std::vector<uint32_t> &indices, std::vector<size_t> &offsets)
{
    const size_t nc = clusters.numClusters();
    offsets.assign(nc + 1, 0);
    for (size_t c = 0; c < nc; ++c)
        offsets[c + 1] = offsets[c] + clusters.sizes[c];
    indices.resize(clusters.numItems());
    std::vector<size_t> cursor = offsets;
    for (size_t i = 0; i < clusters.numItems(); ++i) {
        uint32_t c = clusters.assignments[i];
        indices[cursor[c]++] = static_cast<uint32_t>(i);
    }
}

} // namespace

double
clusterScatterBound(const StridedItems &items, const ClusterResult &clusters,
                    size_t max_iters)
{
    const uint32_t *indices = clusters.memberIndices.data();
    const size_t *offsets = clusters.memberOffsets.data();
    std::vector<uint32_t> fallback_indices;
    std::vector<size_t> fallback_offsets;
    if (clusters.memberOffsets.size() != clusters.numClusters() + 1) {
        buildMembership(clusters, fallback_indices, fallback_offsets);
        indices = fallback_indices.data();
        offsets = fallback_offsets.data();
    }

    double total = 0.0;
    for (uint32_t c = 0; c < clusters.numClusters(); ++c) {
        total += clusterLambdaMax(items, clusters, c, indices + offsets[c],
                                  max_iters) *
                 static_cast<double>(clusters.sizes[c]);
    }
    return total;
}

double
withinClusterScatter(const StridedItems &items, const ClusterResult &clusters)
{
    double total = 0.0;
    const size_t l = items.length;
    for (size_t i = 0; i < items.count; ++i) {
        const float *mu =
            clusters.centroids.data() + clusters.assignments[i] * l;
        for (size_t j = 0; j < l; ++j) {
            double d = items.at(i, j) - mu[j];
            total += d * d;
        }
    }
    return total;
}

} // namespace genreuse
