#include "clustering.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace genreuse {

double
ClusterResult::redundancyRatio() const
{
    if (numItems() == 0)
        return 0.0;
    return 1.0 - static_cast<double>(numClusters()) /
                 static_cast<double>(numItems());
}

ClusterResult
clusterBySignature(const StridedItems &items, const HashFamily &family,
                   OpCounts *ops)
{
    if (ops)
        ops->macs += family.hashMacs(items.count);
    return clusterSignatures(items, family.signatures(items), ops);
}

ClusterResult
clusterSignatures(const StridedItems &items,
                  const std::vector<uint64_t> &sigs, OpCounts *ops)
{
    GENREUSE_REQUIRE(sigs.size() == items.count,
                     "signature count mismatches item count");
    ClusterResult result;
    result.assignments.resize(items.count);

    std::unordered_map<uint64_t, uint32_t> ids;
    ids.reserve(items.count);
    for (size_t i = 0; i < items.count; ++i) {
        auto [it, inserted] =
            ids.emplace(sigs[i], static_cast<uint32_t>(ids.size()));
        result.assignments[i] = it->second;
        (void)inserted;
    }

    const size_t nc = ids.size();
    result.sizes.assign(nc, 0);
    result.centroids = Tensor({nc == 0 ? 1 : nc, items.length});
    result.centroids.zero();
    for (size_t i = 0; i < items.count; ++i) {
        uint32_t c = result.assignments[i];
        result.sizes[c]++;
        float *dst = result.centroids.data() + c * items.length;
        for (size_t j = 0; j < items.length; ++j)
            dst[j] += items.at(i, j);
    }
    for (size_t c = 0; c < nc; ++c) {
        float inv = 1.0f / static_cast<float>(result.sizes[c]);
        float *dst = result.centroids.data() + c * items.length;
        for (size_t j = 0; j < items.length; ++j)
            dst[j] *= inv;
    }
    if (nc == 0)
        result.centroids = Tensor({0, items.length}, std::vector<float>{});

    // CSR membership: counting sort over items preserves ascending item
    // order within each cluster.
    result.memberOffsets.assign(nc + 1, 0);
    for (size_t c = 0; c < nc; ++c)
        result.memberOffsets[c + 1] = result.memberOffsets[c] +
                                      result.sizes[c];
    result.memberIndices.resize(items.count);
    std::vector<size_t> cursor = result.memberOffsets;
    for (size_t i = 0; i < items.count; ++i) {
        uint32_t c = result.assignments[i];
        result.memberIndices[cursor[c]++] = static_cast<uint32_t>(i);
    }

    if (ops) {
        // What the grouping actually did: one table probe/update per
        // item, a per-element accumulate per item, and a per-element
        // normalize per cluster.
        ops->tableOps += items.count;
        ops->aluOps += items.count * items.length + nc * items.length;
        ops->elemMoves += nc * items.length; // centroid panel store
    }
    return result;
}

namespace {

/**
 * Largest eigenvalue of the covariance matrix of one cluster's items,
 * via power iteration performed implicitly (never materializing the
 * L x L covariance): Cov * v = (1/m) Σ_i d_i (d_i . v), d_i = x_i - μ.
 *
 * @p members lists the cluster's item indices in ascending order, so
 * each iteration touches only the cluster's m items instead of scanning
 * the whole panel (the old O(items x clusters x iters) behavior), and
 * the float accumulation order — hence the result — is unchanged.
 */
double
clusterLambdaMax(const StridedItems &items, const ClusterResult &clusters,
                 uint32_t cluster, const uint32_t *members,
                 size_t max_iters)
{
    const size_t l = items.length;
    const size_t m = clusters.sizes[cluster];
    if (m <= 1)
        return 0.0;

    const float *mu = clusters.centroids.data() + cluster * l;

    // Deterministic start vector; re-seeded from the cluster id so
    // different clusters don't share a degenerate start.
    std::vector<double> v(l);
    for (size_t j = 0; j < l; ++j)
        v[j] = 1.0 + 0.01 * static_cast<double>((j * 2654435761u + cluster) % 97);
    double norm = 0.0;
    for (double x : v)
        norm += x * x;
    norm = std::sqrt(norm);
    for (double &x : v)
        x /= norm;

    double lambda = 0.0;
    std::vector<double> av(l);
    for (size_t iter = 0; iter < max_iters; ++iter) {
        std::fill(av.begin(), av.end(), 0.0);
        for (size_t k = 0; k < m; ++k) {
            const size_t i = members[k];
            double dot = 0.0;
            for (size_t j = 0; j < l; ++j)
                dot += (items.at(i, j) - mu[j]) * v[j];
            for (size_t j = 0; j < l; ++j)
                av[j] += (items.at(i, j) - mu[j]) * dot;
        }
        for (size_t j = 0; j < l; ++j)
            av[j] /= static_cast<double>(m);

        double av_norm = 0.0;
        for (double x : av)
            av_norm += x * x;
        av_norm = std::sqrt(av_norm);
        if (av_norm < 1e-12)
            return 0.0; // all points equal the centroid
        lambda = av_norm;
        for (size_t j = 0; j < l; ++j)
            v[j] = av[j] / av_norm;
    }
    return lambda;
}

/** Counting-sort CSR membership from assignments alone, for
 *  ClusterResults assembled without clusterSignatures(). */
void
buildMembership(const ClusterResult &clusters,
                std::vector<uint32_t> &indices, std::vector<size_t> &offsets)
{
    const size_t nc = clusters.numClusters();
    offsets.assign(nc + 1, 0);
    for (size_t c = 0; c < nc; ++c)
        offsets[c + 1] = offsets[c] + clusters.sizes[c];
    indices.resize(clusters.numItems());
    std::vector<size_t> cursor = offsets;
    for (size_t i = 0; i < clusters.numItems(); ++i) {
        uint32_t c = clusters.assignments[i];
        indices[cursor[c]++] = static_cast<uint32_t>(i);
    }
}

} // namespace

double
clusterScatterBound(const StridedItems &items, const ClusterResult &clusters,
                    size_t max_iters)
{
    const uint32_t *indices = clusters.memberIndices.data();
    const size_t *offsets = clusters.memberOffsets.data();
    std::vector<uint32_t> fallback_indices;
    std::vector<size_t> fallback_offsets;
    if (clusters.memberOffsets.size() != clusters.numClusters() + 1) {
        buildMembership(clusters, fallback_indices, fallback_offsets);
        indices = fallback_indices.data();
        offsets = fallback_offsets.data();
    }

    double total = 0.0;
    for (uint32_t c = 0; c < clusters.numClusters(); ++c) {
        total += clusterLambdaMax(items, clusters, c, indices + offsets[c],
                                  max_iters) *
                 static_cast<double>(clusters.sizes[c]);
    }
    return total;
}

double
withinClusterScatter(const StridedItems &items, const ClusterResult &clusters)
{
    double total = 0.0;
    const size_t l = items.length;
    for (size_t i = 0; i < items.count; ++i) {
        const float *mu =
            clusters.centroids.data() + clusters.assignments[i] * l;
        for (size_t j = 0; j < l; ++j) {
            double d = items.at(i, j) - mu[j];
            total += d * d;
        }
    }
    return total;
}

} // namespace genreuse
