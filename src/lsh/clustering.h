/**
 * @file
 * Signature-based online clustering of neuron vectors/blocks: items
 * with identical H-bit LSH signatures form one cluster; the cluster's
 * centroid result is reused for every member (§3.1 step 1).
 */

#ifndef GENREUSE_LSH_CLUSTERING_H
#define GENREUSE_LSH_CLUSTERING_H

#include <cstdint>
#include <vector>

#include "lsh.h"
#include "tensor/matrix_view.h"
#include "tensor/tensor.h"

namespace genreuse {

/** Output of clustering one panel of neuron vectors. */
struct ClusterResult
{
    /** Cluster id of each item, in [0, numClusters). */
    std::vector<uint32_t> assignments;

    /** numClusters x length matrix of cluster means. */
    Tensor centroids;

    /** Item count per cluster. */
    std::vector<size_t> sizes;

    size_t numClusters() const { return sizes.size(); }
    size_t numItems() const { return assignments.size(); }

    /**
     * The paper's redundancy ratio for this panel:
     * r_t = 1 - n_c / n (§4.2). 0 when the panel is empty.
     */
    double redundancyRatio() const;
};

/**
 * Cluster the given items by their LSH signatures under @p family and
 * compute mean centroids.
 */
ClusterResult clusterBySignature(const StridedItems &items,
                                 const HashFamily &family);

/**
 * Cluster pre-computed signatures (used when the caller already hashed,
 * e.g. to reuse signatures across reuse-direction variants).
 */
ClusterResult clusterSignatures(const StridedItems &items,
                                const std::vector<uint64_t> &sigs);

/**
 * Sum of per-cluster (largest covariance eigenvalue x cluster size),
 * the Σ λmax * m term of the paper's accuracy bound (§4.1). Eigenvalues
 * come from power iteration on each cluster's covariance matrix.
 *
 * @param max_iters power-iteration steps per cluster
 */
double clusterScatterBound(const StridedItems &items,
                           const ClusterResult &clusters,
                           size_t max_iters = 30);

/**
 * Total within-cluster sum of squared deviations from the centroid —
 * the exact (not bounded) counterpart of the scatter term; cheap and
 * used as an alternative accuracy indicator in tests.
 */
double withinClusterScatter(const StridedItems &items,
                            const ClusterResult &clusters);

} // namespace genreuse

#endif // GENREUSE_LSH_CLUSTERING_H
