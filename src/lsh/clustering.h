/**
 * @file
 * Signature-based online clustering of neuron vectors/blocks: items
 * with identical H-bit LSH signatures form one cluster; the cluster's
 * centroid result is reused for every member (§3.1 step 1).
 */

#ifndef GENREUSE_LSH_CLUSTERING_H
#define GENREUSE_LSH_CLUSTERING_H

#include <cstdint>
#include <vector>

#include "common/trace.h"
#include "lsh.h"
#include "tensor/matrix_view.h"
#include "tensor/tensor.h"

namespace genreuse {

/** Output of clustering one panel of neuron vectors. */
struct ClusterResult
{
    /** Cluster id of each item, in [0, numClusters). */
    std::vector<uint32_t> assignments;

    /** numClusters x length matrix of cluster means. */
    Tensor centroids;

    /** Item count per cluster. */
    std::vector<size_t> sizes;

    /**
     * Item indices grouped by cluster (CSR layout): the members of
     * cluster c are memberIndices[memberOffsets[c] ..
     * memberOffsets[c+1]), in ascending item order. Lets per-cluster
     * passes (the scatter bound's power iteration) touch only the
     * cluster's items instead of scanning the whole panel.
     */
    std::vector<uint32_t> memberIndices;
    std::vector<size_t> memberOffsets; //!< numClusters + 1 entries

    size_t numClusters() const { return sizes.size(); }
    size_t numItems() const { return assignments.size(); }

    /**
     * The paper's redundancy ratio for this panel:
     * r_t = 1 - n_c / n (§4.2). 0 when the panel is empty.
     */
    double redundancyRatio() const;
};

/**
 * Cluster the given items by their LSH signatures under @p family and
 * compute mean centroids. When @p ops is non-null the *actual*
 * operation counts of hashing + grouping + centroid math are reported
 * (hash MACs, one table probe per item, centroid accumulate/normalize
 * ALU ops) so callers need not estimate them.
 */
ClusterResult clusterBySignature(const StridedItems &items,
                                 const HashFamily &family,
                                 OpCounts *ops = nullptr);

/**
 * clusterBySignature() for the zero-allocation forward path: hashes
 * into arena scratch and rebuilds @p result in place, reusing the
 * capacity of its vectors/centroids across calls. After a warm-up call
 * has grown the capacities for a panel size, steady-state re-clustering
 * of same-or-smaller panels performs no heap allocation. Results are
 * identical to clusterBySignature (same first-seen cluster ids, same
 * accumulation order).
 */
void clusterBySignatureInto(const StridedItems &items,
                            const HashFamily &family, ClusterResult &result,
                            OpCounts *ops = nullptr);

/** clusterSignatures() into a capacity-reusing @p result; @p sigs is a
 *  pointer span of items.count precomputed signatures. */
void clusterSignaturesInto(const StridedItems &items, const uint64_t *sigs,
                           ClusterResult &result, OpCounts *ops = nullptr);

/**
 * Cluster pre-computed signatures (used when the caller already hashed,
 * e.g. to reuse signatures across reuse-direction variants). @p ops as
 * in clusterBySignature, minus the hashing MACs.
 *
 * Non-finite items (a NaN/Inf element anywhere in the row) would
 * silently poison the mean of every cluster they land in; they are
 * instead routed to singleton clusters (detected cheaply through the
 * centroids, so the all-finite fast path pays nothing) with a
 * warn-once log. A singleton's centroid is the row itself, so the
 * member's reconstruction — like the exact GEMM — faithfully carries
 * the non-finite values while every other cluster stays clean.
 */
ClusterResult clusterSignatures(const StridedItems &items,
                                const std::vector<uint64_t> &sigs,
                                OpCounts *ops = nullptr);

/**
 * True when the cluster table is internally consistent: assignments in
 * range and matching the size histogram, no empty cluster, CSR
 * membership covering every item, and finite centroids for every
 * multi-member cluster (a singleton faithfully reproduces its row, so
 * it may carry the row's non-finite values). Reuse kernels validate
 * the table before trusting it — a corrupted table (bit-flip, fault
 * injection) downgrades the panel to exact GEMM instead of reading out
 * of bounds.
 */
bool clusterTableValid(const ClusterResult &clusters);

/**
 * Sum of per-cluster (largest covariance eigenvalue x cluster size),
 * the Σ λmax * m term of the paper's accuracy bound (§4.1). Eigenvalues
 * come from power iteration on each cluster's covariance matrix.
 *
 * @param max_iters power-iteration steps per cluster
 */
double clusterScatterBound(const StridedItems &items,
                           const ClusterResult &clusters,
                           size_t max_iters = 30);

/**
 * Total within-cluster sum of squared deviations from the centroid —
 * the exact (not bounded) counterpart of the scatter term; cheap and
 * used as an alternative accuracy indicator in tests.
 */
double withinClusterScatter(const StridedItems &items,
                            const ClusterResult &clusters);

} // namespace genreuse

#endif // GENREUSE_LSH_CLUSTERING_H
