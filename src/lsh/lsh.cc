#include "lsh.h"

#include "common/logging.h"
#include "tensor/gemm.h"

namespace genreuse {

HashFamily::HashFamily(Tensor vectors, std::vector<float> biases)
    : vectors_(std::move(vectors)), biases_(std::move(biases))
{
    GENREUSE_REQUIRE(vectors_.shape().rank() == 2,
                     "hash vectors must form an H x L matrix");
    GENREUSE_REQUIRE(vectors_.shape().rows() >= 1 &&
                     vectors_.shape().rows() <= 64,
                     "need 1..64 hash functions, got ",
                     vectors_.shape().rows());
    if (biases_.empty())
        biases_.assign(vectors_.shape().rows(), 0.0f);
    GENREUSE_REQUIRE(biases_.size() == vectors_.shape().rows(),
                     "bias count mismatches hash function count");
}

HashFamily
HashFamily::random(size_t num_functions, size_t length, Rng &rng)
{
    return HashFamily(
        Tensor::randomNormal({num_functions, length}, rng, 0.0f, 1.0f));
}

uint64_t
HashFamily::signature(const StridedItems &items, size_t index) const
{
    GENREUSE_REQUIRE(items.length == vectorLength(),
                     "item length ", items.length,
                     " != hash vector length ", vectorLength());
    const size_t h = numFunctions(), l = vectorLength();
    uint64_t sig = 0;
    for (size_t f = 0; f < h; ++f) {
        const float *v = vectors_.data() + f * l;
        double dot = biases_[f];
        for (size_t j = 0; j < l; ++j)
            dot += static_cast<double>(v[j]) * items.at(index, j);
        if (dot > 0.0)
            sig |= uint64_t{1} << f;
    }
    return sig;
}

std::vector<uint64_t>
HashFamily::signatures(const StridedItems &items) const
{
    GENREUSE_REQUIRE(items.length == vectorLength(),
                     "item length ", items.length,
                     " != hash vector length ", vectorLength());
    const size_t h = numFunctions(), l = vectorLength();
    std::vector<uint64_t> sigs(items.count, 0);

    if (items.contiguousRows() && items.count > 0) {
        // Fast path: S = X x V^T via the blocked GEMM, then sign.
        // V is H x L so we multiply rows of X against rows of V.
        Tensor vt({l, h});
        for (size_t f = 0; f < h; ++f)
            for (size_t j = 0; j < l; ++j)
                vt.at2(j, f) = vectors_.at2(f, j);
        Tensor proj({items.count, h});
        gemmRaw(items.base, vt.data(), proj.data(), items.count, h, l,
                items.itemStride, h, h, false);
        for (size_t i = 0; i < items.count; ++i) {
            uint64_t sig = 0;
            for (size_t f = 0; f < h; ++f) {
                if (proj.at2(i, f) + biases_[f] > 0.0f)
                    sig |= uint64_t{1} << f;
            }
            sigs[i] = sig;
        }
        return sigs;
    }

    for (size_t i = 0; i < items.count; ++i)
        sigs[i] = signature(items, i);
    return sigs;
}

} // namespace genreuse
