#include "lsh.h"

#include "common/arena.h"
#include "common/logging.h"
#include "common/simd.h"
#include "tensor/gemm.h"

namespace genreuse {

HashFamily::HashFamily(Tensor vectors, std::vector<float> biases)
    : vectors_(std::move(vectors)), biases_(std::move(biases))
{
    GENREUSE_REQUIRE(vectors_.shape().rank() == 2,
                     "hash vectors must form an H x L matrix");
    GENREUSE_REQUIRE(vectors_.shape().rows() >= 1 &&
                     vectors_.shape().rows() <= 64,
                     "need 1..64 hash functions, got ",
                     vectors_.shape().rows());
    if (biases_.empty())
        biases_.assign(vectors_.shape().rows(), 0.0f);
    GENREUSE_REQUIRE(biases_.size() == vectors_.shape().rows(),
                     "bias count mismatches hash function count");
    // Transpose cached eagerly (not lazily) so const families can be
    // shared across explorer threads without synchronization.
    const size_t h = vectors_.shape().rows(), l = vectors_.shape().cols();
    vectorsT_ = Tensor({l, h});
    for (size_t f = 0; f < h; ++f)
        for (size_t j = 0; j < l; ++j)
            vectorsT_.at2(j, f) = vectors_.at2(f, j);
}

HashFamily
HashFamily::random(size_t num_functions, size_t length, Rng &rng)
{
    return HashFamily(
        Tensor::randomNormal({num_functions, length}, rng, 0.0f, 1.0f));
}

uint64_t
HashFamily::signature(const StridedItems &items, size_t index) const
{
    GENREUSE_REQUIRE(items.length == vectorLength(),
                     "item length ", items.length,
                     " != hash vector length ", vectorLength());
    const size_t h = numFunctions(), l = vectorLength();
    uint64_t sig = 0;
    for (size_t f = 0; f < h; ++f) {
        const float *v = vectors_.data() + f * l;
        double dot = biases_[f];
        for (size_t j = 0; j < l; ++j)
            dot += static_cast<double>(v[j]) * items.at(index, j);
        if (dot > 0.0)
            sig |= uint64_t{1} << f;
    }
    return sig;
}

void
HashFamily::signaturesInto(const StridedItems &items, uint64_t *sigs) const
{
    GENREUSE_REQUIRE(items.length == vectorLength(),
                     "item length ", items.length,
                     " != hash vector length ", vectorLength());
    const size_t h = numFunctions(), l = vectorLength();
    if (items.count == 0)
        return;
    const simd::Ops &ops = simd::ops();

    if (items.contiguousRows()) {
        // Row fast path: S = X x V^T via the dispatched GEMM, then the
        // sign pass.
        Arena &arena = Arena::forCurrentStream();
        ArenaFrame frame(arena);
        float *proj = arena.allocSpan<float>(items.count * h);
        ops.gemmF32(items.base, vectorsT_.data(), proj, items.count, h, l,
                    items.itemStride, h, h, false);
        ops.signProject(proj, biases_.data(), items.count, h, sigs);
        return;
    }

    if (items.itemStride == 1) {
        // Column fast path (the horizontal kernel's per-band view):
        // items are columns of a row-major panel with row stride
        // elemStride, so P = V x X is a plain GEMM with
        // P[f][i] = Σ_j v[f][j] * item_i[j] — the same ordered float
        // sum the row path computes, transposed.
        Arena &arena = Arena::forCurrentStream();
        ArenaFrame frame(arena);
        float *proj = arena.allocSpan<float>(h * items.count);
        ops.gemmF32(vectors_.data(), items.base, proj, h, items.count, l,
                    l, items.elemStride, items.count, false);
        for (size_t i = 0; i < items.count; ++i) {
            uint64_t sig = 0;
            for (size_t f = 0; f < h; ++f) {
                if (proj[f * items.count + i] + biases_[f] > 0.0f)
                    sig |= uint64_t{1} << f;
            }
            sigs[i] = sig;
        }
        return;
    }

    for (size_t i = 0; i < items.count; ++i)
        sigs[i] = signature(items, i);
}

std::vector<uint64_t>
HashFamily::signatures(const StridedItems &items) const
{
    std::vector<uint64_t> sigs(items.count, 0);
    signaturesInto(items, sigs.data());
    return sigs;
}

} // namespace genreuse
