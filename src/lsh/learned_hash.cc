#include "learned_hash.h"

#include <cmath>
#include <vector>

#include "clustering.h"
#include "common/logging.h"

namespace genreuse {

namespace {

/** Dense symmetric matrix-vector product y = A x (A is l x l). */
void
symMatVec(const std::vector<double> &a, const std::vector<double> &x,
          std::vector<double> &y, size_t l)
{
    for (size_t i = 0; i < l; ++i) {
        double s = 0.0;
        const double *row = a.data() + i * l;
        for (size_t j = 0; j < l; ++j)
            s += row[j] * x[j];
        y[i] = s;
    }
}

double
norm2(const std::vector<double> &v)
{
    double s = 0.0;
    for (double x : v)
        s += x * x;
    return std::sqrt(s);
}

} // namespace

HashFamily
learnHashFamilyPca(const StridedItems &items, size_t num_functions,
                   size_t iters)
{
    GENREUSE_REQUIRE(items.count >= 2, "need at least 2 sample vectors");
    GENREUSE_REQUIRE(num_functions >= 1 && num_functions <= 64,
                     "H must be in [1, 64]");
    const size_t l = items.length;
    const size_t n = items.count;

    // Sample mean.
    std::vector<double> mu(l, 0.0);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < l; ++j)
            mu[j] += items.at(i, j);
    for (double &x : mu)
        x /= static_cast<double>(n);

    // Sample covariance (l x l). L is a reuse granularity, typically
    // tens to a few hundred, so the dense matrix is small.
    std::vector<double> cov(l * l, 0.0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < l; ++j) {
            double dj = items.at(i, j) - mu[j];
            double *row = cov.data() + j * l;
            for (size_t k = j; k < l; ++k)
                row[k] += dj * (items.at(i, k) - mu[k]);
        }
    }
    for (size_t j = 0; j < l; ++j)
        for (size_t k = j; k < l; ++k) {
            cov[j * l + k] /= static_cast<double>(n);
            cov[k * l + j] = cov[j * l + k];
        }

    // Orthogonal power iteration with deflation for the top components.
    const size_t h = std::min(num_functions, l);
    Tensor vectors({num_functions, l});
    std::vector<float> biases(num_functions, 0.0f);
    std::vector<std::vector<double>> components;

    for (size_t comp = 0; comp < h; ++comp) {
        std::vector<double> v(l);
        for (size_t j = 0; j < l; ++j)
            v[j] = 1.0 + 0.01 * static_cast<double>((j * 40503u + comp) % 89);
        // Orthogonalize the start against found components.
        for (const auto &u : components) {
            double dot = 0.0;
            for (size_t j = 0; j < l; ++j)
                dot += v[j] * u[j];
            for (size_t j = 0; j < l; ++j)
                v[j] -= dot * u[j];
        }
        double nv = norm2(v);
        if (nv < 1e-12)
            v[comp % l] = 1.0, nv = 1.0;
        for (double &x : v)
            x /= nv;

        std::vector<double> av(l);
        for (size_t iter = 0; iter < iters; ++iter) {
            symMatVec(cov, v, av, l);
            // Deflate: remove projections onto earlier components.
            for (const auto &u : components) {
                double dot = 0.0;
                for (size_t j = 0; j < l; ++j)
                    dot += av[j] * u[j];
                for (size_t j = 0; j < l; ++j)
                    av[j] -= dot * u[j];
            }
            double na = norm2(av);
            if (na < 1e-14)
                break;
            for (size_t j = 0; j < l; ++j)
                v[j] = av[j] / na;
        }
        components.push_back(v);

        for (size_t j = 0; j < l; ++j)
            vectors.at2(comp, j) = static_cast<float>(v[j]);
        // Centering bias: hyperplane passes through the sample mean so
        // the split is balanced.
        double b = 0.0;
        for (size_t j = 0; j < l; ++j)
            b -= v[j] * mu[j];
        biases[comp] = static_cast<float>(b);
    }

    // If H > L (more hash functions than dimensions), the extra
    // hyperplanes repeat the leading components with offset biases so
    // they still partition the population meaningfully.
    for (size_t comp = h; comp < num_functions; ++comp) {
        const auto &u = components[comp % h];
        for (size_t j = 0; j < l; ++j)
            vectors.at2(comp, j) = static_cast<float>(u[j]);
        double b = 0.0;
        for (size_t j = 0; j < l; ++j)
            b -= u[j] * mu[j];
        // Offset by a fraction of the component scale to cut elsewhere.
        double shift = 0.25 * (1.0 + static_cast<double>(comp - h));
        biases[comp] = static_cast<float>(b + shift);
    }

    return HashFamily(std::move(vectors), std::move(biases));
}

double
familyScatterOnSample(const HashFamily &family, const StridedItems &items)
{
    ClusterResult clusters = clusterBySignature(items, family);
    if (items.count == 0)
        return 0.0;
    return withinClusterScatter(items, clusters) /
           static_cast<double>(items.count);
}

} // namespace genreuse
