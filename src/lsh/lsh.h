/**
 * @file
 * Locality-sensitive hashing (§2 of the paper): sign-of-dot-product
 * hyperplane hashing. H hash functions map a neuron vector to an H-bit
 * signature; vectors with equal signatures form a cluster.
 */

#ifndef GENREUSE_LSH_LSH_H
#define GENREUSE_LSH_LSH_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/matrix_view.h"
#include "tensor/tensor.h"

namespace genreuse {

/**
 * A family of H hyperplane hash functions over vectors of a fixed
 * length L. h_v(x) = 1 iff v.x + bias > 0 (Equation 1; the paper's
 * form has bias = 0, learned families may carry a centering bias).
 */
class HashFamily
{
  public:
    HashFamily() = default;

    /**
     * @param vectors H x L matrix, one hash hyperplane per row
     * @param biases optional per-function bias (empty means all zero)
     */
    HashFamily(Tensor vectors, std::vector<float> biases = {});

    /** Random Gaussian hyperplanes — the "lightweight" profiling family. */
    static HashFamily random(size_t num_functions, size_t length, Rng &rng);

    size_t numFunctions() const { return vectors_.shape().rows(); }
    size_t vectorLength() const { return vectors_.shape().cols(); }

    const Tensor &vectors() const { return vectors_; }
    const std::vector<float> &biases() const { return biases_; }

    /** Signature of a single strided item. @pre item length matches */
    uint64_t signature(const StridedItems &items, size_t index) const;

    /**
     * Signatures for every item. Uses a GEMM fast path when the items
     * are contiguous rows.
     */
    std::vector<uint64_t> signatures(const StridedItems &items) const;

    /**
     * signatures() without the output allocation: writes into
     * @p sigs[0 .. items.count). Dispatched-GEMM fast paths cover
     * contiguous rows AND unit-item-stride column layouts (the
     * horizontal kernel's per-band view); scratch comes from the
     * calling thread's stream arena. Both fast paths accumulate each
     * projection as the same ordered float sequence, so row- and
     * column-view signatures of the same data agree bit-for-bit.
     */
    void signaturesInto(const StridedItems &items, uint64_t *sigs) const;

    /**
     * MAC count of hashing @p n items (n * H * L) — consumed by the MCU
     * cost model, which charges clustering as an extra X x Hash GEMM.
     */
    size_t
    hashMacs(size_t n) const
    {
        return n * numFunctions() * vectorLength();
    }

  private:
    Tensor vectors_;  // H x L
    Tensor vectorsT_; // L x H, cached once for the signature GEMM
    std::vector<float> biases_;
};

} // namespace genreuse

#endif // GENREUSE_LSH_LSH_H
