#include "pruning.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "models.h"
#include "nn/dense.h"

namespace genreuse {

std::vector<double>
filterL1Norms(const Conv2D &conv)
{
    const Tensor &k = const_cast<Conv2D &>(conv).kernel().value;
    const size_t m = k.shape().dim(0);
    const size_t per_filter = k.size() / m;
    std::vector<double> norms(m, 0.0);
    for (size_t f = 0; f < m; ++f) {
        const float *w = k.data() + f * per_filter;
        for (size_t i = 0; i < per_filter; ++i)
            norms[f] += std::fabs(w[i]);
    }
    return norms;
}

std::vector<size_t>
selectFiltersByNorm(const std::vector<double> &norms, size_t keep)
{
    GENREUSE_REQUIRE(keep >= 1 && keep <= norms.size(),
                     "keep count out of range");
    std::vector<size_t> order(norms.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return norms[a] > norms[b];
    });
    order.resize(keep);
    std::sort(order.begin(), order.end());
    return order;
}

namespace {

/** Copy selected filters (and input-channel subset) between kernels. */
void
transferConvWeights(Conv2D &dst, Conv2D &src,
                    const std::vector<size_t> &out_keep,
                    const std::vector<size_t> &in_keep)
{
    Tensor &dk = dst.kernel().value;
    Tensor &sk = src.kernel().value;
    const size_t kh = src.kernelSize(), kw = src.kernelSize();
    for (size_t fo = 0; fo < out_keep.size(); ++fo) {
        for (size_t ci = 0; ci < in_keep.size(); ++ci) {
            for (size_t y = 0; y < kh; ++y) {
                for (size_t x = 0; x < kw; ++x) {
                    dk[((fo * in_keep.size() + ci) * kh + y) * kw + x] =
                        sk[((out_keep[fo] * src.inChannels() +
                             in_keep[ci]) * kh + y) * kw + x];
                }
            }
        }
        dst.bias().value[fo] = src.bias().value[out_keep[fo]];
    }
}

} // namespace

Network
pruneCifarNet(Network &trained, double keep_fraction, Rng &rng)
{
    GENREUSE_REQUIRE(keep_fraction > 0.0 && keep_fraction <= 1.0,
                     "keep fraction must be in (0, 1]");
    Conv2D *conv1 = trained.findConv("conv1");
    Conv2D *conv2 = trained.findConv("conv2");
    GENREUSE_REQUIRE(conv1 && conv2,
                     "pruneCifarNet expects a CifarNet-shaped network");
    const size_t w_old = conv1->outChannels();
    const size_t w_new = std::max<size_t>(
        1, static_cast<size_t>(std::lround(w_old * keep_fraction)));

    // Rank filters.
    std::vector<size_t> keep1 =
        selectFiltersByNorm(filterL1Norms(*conv1), w_new);
    std::vector<size_t> keep2 =
        selectFiltersByNorm(filterL1Norms(*conv2), w_new);
    std::vector<size_t> all_in(3);
    for (size_t i = 0; i < 3; ++i)
        all_in[i] = i;

    // Build the narrow network and transfer weights.
    Network pruned = makeCifarNet(rng, 10, w_new);
    Conv2D *p1 = pruned.findConv("conv1");
    Conv2D *p2 = pruned.findConv("conv2");
    transferConvWeights(*p1, *conv1, keep1, all_in);
    transferConvWeights(*p2, *conv2, keep2, keep1);

    // FC weights: input rows follow the (C, H, W) flatten of conv2's
    // pooled output; keep the rows of surviving channels.
    auto *fc3_old = dynamic_cast<Dense *>(&trained.layer(6));
    auto *fc3_new = dynamic_cast<Dense *>(&pruned.layer(6));
    auto *fc4_old = dynamic_cast<Dense *>(&trained.layer(8));
    auto *fc4_new = dynamic_cast<Dense *>(&pruned.layer(8));
    GENREUSE_REQUIRE(fc3_old && fc3_new && fc4_old && fc4_new,
                     "unexpected CifarNet layer layout");
    const size_t spatial = fc3_old->inFeatures() / w_old;
    for (size_t c = 0; c < keep2.size(); ++c) {
        for (size_t s = 0; s < spatial; ++s) {
            const size_t src_row = keep2[c] * spatial + s;
            const size_t dst_row = c * spatial + s;
            for (size_t o = 0; o < fc3_old->outFeatures(); ++o) {
                fc3_new->weight().value.at2(dst_row, o) =
                    fc3_old->weight().value.at2(src_row, o);
            }
        }
    }
    fc3_new->bias().value = fc3_old->bias().value;
    fc4_new->weight().value = fc4_old->weight().value;
    fc4_new->bias().value = fc4_old->bias().value;
    return pruned;
}

size_t
parameterCount(Network &net)
{
    size_t total = 0;
    for (auto *p : net.params())
        total += p->value.size();
    return total;
}

} // namespace genreuse
