#include "models.h"

#include "nn/activation.h"
#include "nn/composite.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"

namespace genreuse {

Network
makeCifarNet(Rng &rng, size_t num_classes, size_t width)
{
    Network net("CifarNet");
    net.emplace<Conv2D>("conv1", 3, width, 5, 1, 2, rng);
    net.emplace<ReLU>("relu1");
    net.emplace<MaxPool2D>("pool1", 2, 2); // 32 -> 16
    net.emplace<Conv2D>("conv2", width, width, 5, 1, 2, rng);
    net.emplace<ReLU>("relu2");
    net.emplace<MaxPool2D>("pool2", 2, 2); // 16 -> 8
    net.emplace<Dense>("fc3", width * 8 * 8, 192, rng);
    net.emplace<ReLU>("relu3");
    net.emplace<Dense>("fc4", 192, num_classes, rng);
    return net;
}

Network
makeZfNet(Rng &rng, size_t num_classes)
{
    Network net("ZfNet");
    net.emplace<Conv2D>("conv1", 3, 96, 7, 2, 3, rng); // 32 -> 16
    net.emplace<ReLU>("relu1");
    net.emplace<MaxPool2D>("pool1", 2, 2); // 16 -> 8
    net.emplace<Conv2D>("conv2", 96, 256, 5, 1, 2, rng);
    net.emplace<ReLU>("relu2");
    net.emplace<MaxPool2D>("pool2", 2, 2); // 8 -> 4
    net.emplace<Dense>("fc3", 256 * 4 * 4, 256, rng);
    net.emplace<ReLU>("relu3");
    net.emplace<Dense>("fc4", 256, num_classes, rng);
    return net;
}

Network
makeSqueezeNet(Rng &rng, bool bypass, size_t num_classes)
{
    Network net(bypass ? "SqueezeNet-bypass" : "SqueezeNet");
    net.emplace<Conv2D>("conv1", 3, 64, 3, 1, 1, rng);
    net.emplace<ReLU>("relu1");
    net.emplace<MaxPool2D>("pool1", 2, 2); // 32 -> 16
    net.emplace<FireModule>("Fire2", 64, 16, 64, 64, false, rng);
    net.emplace<FireModule>("Fire3", 128, 16, 64, 64, bypass, rng);
    net.emplace<MaxPool2D>("pool3", 2, 2); // 16 -> 8
    net.emplace<FireModule>("Fire4", 128, 32, 128, 128, false, rng);
    net.emplace<FireModule>("Fire5", 256, 32, 128, 128, bypass, rng);
    net.emplace<MaxPool2D>("pool5", 2, 2); // 8 -> 4
    net.emplace<FireModule>("Fire6", 256, 48, 192, 192, false, rng);
    net.emplace<FireModule>("Fire7", 384, 48, 192, 192, bypass, rng);
    net.emplace<FireModule>("Fire8", 384, 64, 256, 256, false, rng);
    net.emplace<GlobalAvgPool2D>("gap");
    net.emplace<Dense>("fc", 512, num_classes, rng);
    return net;
}

Network
makeResNet18(Rng &rng, size_t num_classes, size_t base_width)
{
    const size_t w1 = base_width, w2 = 2 * base_width, w3 = 4 * base_width,
                 w4 = 8 * base_width;
    Network net("ResNet-18");
    net.emplace<Conv2D>("conv1", 3, w1, 3, 1, 1, rng);
    net.emplace<ReLU>("relu1");
    net.emplace<ResidualBlock>("Conv2-1", w1, w1, 1, rng);
    net.emplace<ResidualBlock>("Conv2-2", w1, w1, 1, rng);
    net.emplace<ResidualBlock>("Conv3-1", w1, w2, 2, rng); // 64 -> 32
    net.emplace<ResidualBlock>("Conv3-2", w2, w2, 1, rng);
    net.emplace<ResidualBlock>("Conv4-1", w2, w3, 2, rng); // 32 -> 16
    net.emplace<ResidualBlock>("Conv4-2", w3, w3, 1, rng);
    net.emplace<ResidualBlock>("Conv5-1", w3, w4, 2, rng); // 16 -> 8
    net.emplace<ResidualBlock>("Conv5-2", w4, w4, 1, rng);
    net.emplace<GlobalAvgPool2D>("gap");
    net.emplace<Dense>("fc", w4, num_classes, rng);
    return net;
}

Network
makeTinyNet(Rng &rng, size_t num_classes, size_t image_size)
{
    Network net("TinyNet");
    net.emplace<Conv2D>("conv1", 3, 8, 3, 1, 1, rng);
    net.emplace<ReLU>("relu1");
    net.emplace<MaxPool2D>("pool1", 2, 2);
    net.emplace<Conv2D>("conv2", 8, 16, 3, 1, 1, rng);
    net.emplace<ReLU>("relu2");
    net.emplace<MaxPool2D>("pool2", 2, 2);
    const size_t spatial = image_size / 4;
    net.emplace<Dense>("fc", 16 * spatial * spatial, num_classes, rng);
    return net;
}

} // namespace genreuse
