/**
 * @file
 * The paper's model zoo (§5.1): CifarNet, ZfNet (a 32x32 variant with
 * the paper's layer dimensions), SqueezeNet with and without bypass,
 * and ResNet-18 for the 64x64 experiments (§5.3.7).
 *
 * Layer dimensions follow Table 1 of the paper where it specifies
 * them: CifarNet Conv1 has Din=75 (5x5x3) and M=64, Conv2 Din=1600
 * (5x5x64) and M=64; ZfNet Conv1 Din=147 (7x7x3) M=96, Conv2 Din=2400
 * (5x5x96) M=256; SqueezeNet Fire expand_3x3 convs match the standard
 * squeeze/expand channel plan (16/64, 32/128, 48/192, 64/256).
 * ResNet-18 keeps the standard topology with a configurable base width
 * (default 32) so the full pipeline fits this reproduction's CPU-only
 * training budget; see DESIGN.md.
 */

#ifndef GENREUSE_MODELS_MODELS_H
#define GENREUSE_MODELS_MODELS_H

#include "nn/network.h"

namespace genreuse {

/**
 * CifarNet: conv5x5(w) - pool - conv5x5(w) - pool - fc192 - fc10.
 * @p width (default 64, the paper's M) is exposed so the channel-
 * pruning experiment (Table 5) can build structurally pruned variants.
 */
Network makeCifarNet(Rng &rng, size_t num_classes = 10, size_t width = 64);

/**
 * ZfNet scaled to 32x32 inputs: conv7x7/2(96) - pool - conv5x5(256) -
 * pool - fc256 - fc10. Conv Din/M match the paper's Table 1b.
 */
Network makeZfNet(Rng &rng, size_t num_classes = 10);

/**
 * SqueezeNet for 32x32 inputs: conv3x3(64) - pool - fire2..fire8 -
 * global average pool - fc. @p bypass enables the residual bypass on
 * fire3/5/7 (the paper's "w/ bypass" variant).
 */
Network makeSqueezeNet(Rng &rng, bool bypass, size_t num_classes = 10);

/**
 * ResNet-18 topology for 64x64 inputs with configurable base width.
 */
Network makeResNet18(Rng &rng, size_t num_classes = 10,
                     size_t base_width = 32);

/**
 * A tiny two-conv network for fast tests: conv3x3(8) - pool -
 * conv3x3(16) - pool - fc. Not part of the paper; test infrastructure.
 */
Network makeTinyNet(Rng &rng, size_t num_classes = 10,
                    size_t image_size = 32);

} // namespace genreuse

#endif // GENREUSE_MODELS_MODELS_H
