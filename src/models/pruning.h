/**
 * @file
 * Structured (channel) pruning — the "CP" of the paper's Table 5
 * tradeoff study. Filters are ranked by L1 norm (the standard
 * magnitude criterion); a pruned network is *structurally* narrower
 * (fewer output channels), with the surviving filters' weights
 * transferred, so the FLOP and latency savings are real rather than
 * simulated by zeroing.
 */

#ifndef GENREUSE_MODELS_PRUNING_H
#define GENREUSE_MODELS_PRUNING_H

#include <cstddef>
#include <vector>

#include "nn/conv2d.h"
#include "nn/network.h"

namespace genreuse {

/** L1 norm of each filter (output channel) of a convolution. */
std::vector<double> filterL1Norms(const Conv2D &conv);

/**
 * Indices of the @p keep largest-norm filters, in ascending index
 * order (so weight transfer preserves relative channel order).
 */
std::vector<size_t> selectFiltersByNorm(const std::vector<double> &norms,
                                        size_t keep);

/**
 * Build a channel-pruned copy of a *CifarNet-shaped* network
 * (conv-relu-pool-conv-relu-pool-fc-relu-fc): both convolutions keep
 * a @p keep_fraction of their filters (at least 1), the second conv's
 * input channels and the first FC's input rows are sliced to match,
 * and all surviving weights are copied from @p trained.
 *
 * @param trained a network produced by makeCifarNet() (any width)
 * @param keep_fraction fraction of filters to keep in (0, 1]
 * @param rng initializer for the (none remaining) fresh parameters
 */
Network pruneCifarNet(Network &trained, double keep_fraction, Rng &rng);

/** Total trainable parameter count of a network. */
size_t parameterCount(Network &net);

} // namespace genreuse

#endif // GENREUSE_MODELS_PRUNING_H
