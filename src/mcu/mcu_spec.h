/**
 * @file
 * Microcontroller board descriptions (§2, §5.1). The paper measures on
 * two STM32 boards; this reproduction substitutes an analytical
 * execution model whose parameters come from the boards' public
 * datasheets and from the paper's own characterization (the Cortex-M7
 * dual-issues load+ALU and runs a 20% faster clock, ending up roughly
 * 2x faster end-to-end, §5.2).
 */

#ifndef GENREUSE_MCU_MCU_SPEC_H
#define GENREUSE_MCU_MCU_SPEC_H

#include <cstdint>
#include <string>

namespace genreuse {

/** Static description of one MCU board. */
struct McuSpec
{
    std::string name;
    std::string core;
    double clockMhz = 100.0;

    /** On-chip SRAM available for activations/scratch (bytes). */
    size_t sramBytes = 0;

    /** On-chip flash for code + weights (bytes). */
    size_t flashBytes = 0;

    /**
     * Flash reserved for code (runtime + kernels + CMSIS), leaving
     * flashBytes - codeAllowanceBytes for weights. The memory model's
     * fits() charges this, so a network whose weights alone fit flash
     * but not flash minus the firmware image is correctly rejected.
     */
    size_t codeAllowanceBytes = 128 * 1024;

    /**
     * 8/16-bit MACs retired per cycle by the SIMD MAC path
     * (CMSIS-NN uses the dual 16-bit SMLAD on both cores).
     */
    double simdMacsPerCycle = 2.0;

    /**
     * Superscalar factor applied to *all* instruction streams: 1.0 for
     * the single-issue M4, ~1.7 for the M7's dual-issue of load and ALU
     * ops, which with the 20% clock edge reproduces the paper's
     * observed ~2x end-to-end gap.
     */
    double issueFactor = 1.0;

    /** Cycles to move one element (load + store + addressing), M4. */
    double copyCyclesPerElem = 3.0;

    /** Cycles per scalar add/compare outside the SIMD MAC path. */
    double aluCyclesPerOp = 1.0;

    /** Cycles per hash-table probe/update during clustering. */
    double tableCyclesPerOp = 8.0;

    /** STM32F469I Discovery: Cortex-M4 @ 180 MHz, 324 KB SRAM, 2 MB flash. */
    static McuSpec stm32f469i();

    /** STM32F767ZI Nucleo: Cortex-M7 @ 216 MHz, 512 KB SRAM, 2 MB flash. */
    static McuSpec stm32f767zi();
};

} // namespace genreuse

#endif // GENREUSE_MCU_MCU_SPEC_H
