#include "mcu_spec.h"

namespace genreuse {

McuSpec
McuSpec::stm32f469i()
{
    McuSpec s;
    s.name = "STM32F469I";
    s.core = "Cortex-M4";
    s.clockMhz = 180.0;
    s.sramBytes = 324 * 1024;
    s.flashBytes = 2048 * 1024;
    s.simdMacsPerCycle = 2.0;
    s.issueFactor = 1.0;
    s.copyCyclesPerElem = 3.0;
    s.aluCyclesPerOp = 1.0;
    s.tableCyclesPerOp = 8.0;
    return s;
}

McuSpec
McuSpec::stm32f767zi()
{
    McuSpec s;
    s.name = "STM32F767ZI";
    s.core = "Cortex-M7";
    s.clockMhz = 216.0; // 20% faster than the F469I (paper §5.1)
    s.sramBytes = 512 * 1024;
    s.flashBytes = 2048 * 1024;
    s.simdMacsPerCycle = 2.0;
    s.issueFactor = 1.7; // dual issue of load and ALU instructions
    s.copyCyclesPerElem = 3.0;
    s.aluCyclesPerOp = 1.0;
    s.tableCyclesPerOp = 8.0;
    return s;
}

} // namespace genreuse
