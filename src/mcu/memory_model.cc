#include "memory_model.h"

#include <algorithm>

namespace genreuse {

size_t
MemoryEstimate::flashBytes(size_t code_allowance) const
{
    size_t total = code_allowance;
    for (const auto &l : layers)
        total += l.weightBytes;
    return total;
}

size_t
MemoryEstimate::sramPeakBytes() const
{
    size_t peak = 0;
    for (const auto &l : layers)
        peak = std::max(peak, l.sramPeak());
    return peak;
}

std::string
MemoryEstimate::sramPeakLayer() const
{
    // Strict > so ties resolve to the FIRST peak layer (execution
    // order), matching where the allocator high-water mark is reached.
    size_t peak = 0;
    std::string name;
    for (const auto &l : layers) {
        if (l.sramPeak() > peak || name.empty()) {
            peak = l.sramPeak();
            name = l.name;
        }
    }
    return name;
}

bool
MemoryEstimate::fits(const McuSpec &spec) const
{
    return flashBytes(spec.codeAllowanceBytes) <= spec.flashBytes &&
           sramPeakBytes() <= spec.sramBytes;
}

} // namespace genreuse
