#include "memory_model.h"

#include <algorithm>
#include <sstream>

#include "common/eventlog.h"
#include "common/faultpoint.h"
#include "common/metrics.h"

namespace genreuse {

std::string
FitReport::describe() const
{
    std::ostringstream os;
    if (fits()) {
        os << "fits: flash " << flashRequired << "/" << flashCapacity
           << " B, SRAM peak " << sramRequired << "/" << sramCapacity
           << " B (at layer '" << sramPeakLayer << "')";
        return os.str();
    }
    const char *sep = "";
    if (!flashFits()) {
        os << "flash short by " << flashShortfall() << " B ("
           << flashRequired << " needed, " << flashCapacity
           << " available)";
        sep = "; ";
    }
    if (!sramFits()) {
        os << sep << "SRAM short by " << sramShortfall() << " B ("
           << sramRequired << " needed, " << sramCapacity
           << " available, peak at layer '" << sramPeakLayer << "')";
    }
    return os.str();
}

size_t
MemoryEstimate::flashBytes(size_t code_allowance) const
{
    size_t total = code_allowance;
    for (const auto &l : layers)
        total += l.weightBytes;
    return total;
}

size_t
MemoryEstimate::sramPeakBytes() const
{
    size_t peak = 0;
    for (const auto &l : layers)
        peak = std::max(peak, l.sramPeak());
    return peak;
}

std::string
MemoryEstimate::sramPeakLayer() const
{
    // Strict > so ties resolve to the FIRST peak layer (execution
    // order), matching where the allocator high-water mark is reached.
    size_t peak = 0;
    std::string name;
    for (const auto &l : layers) {
        if (l.sramPeak() > peak || name.empty()) {
            peak = l.sramPeak();
            name = l.name;
        }
    }
    return name;
}

FitReport
MemoryEstimate::diagnose(const McuSpec &spec) const
{
    FitReport r;
    r.flashRequired = flashBytes(spec.codeAllowanceBytes);
    r.flashCapacity = spec.flashBytes;
    r.sramRequired = sramPeakBytes();
    if (faultpoint::active(faultpoint::Fault::SramExhausted)) {
        faultpoint::noteFired(faultpoint::Fault::SramExhausted);
        r.sramCapacity = 0;
    } else {
        r.sramCapacity = spec.sramBytes;
    }
    r.sramPeakLayer = sramPeakLayer();
    // High-water mark of every estimate this process diagnosed — the
    // SRAM pressure gauge for timelines and BENCH metrics. Journal an
    // event only when the mark actually moves up, so the flight
    // recorder sees the staircase rather than every re-diagnose.
    static metrics::Gauge &hw = metrics::gauge("mcu.sram_high_water_bytes");
    const double required = static_cast<double>(r.sramRequired);
    if (eventlog::enabled() && required > hw.get())
        eventlog::record(eventlog::Type::SramHighWater,
                         eventlog::intern(r.sramPeakLayer), required,
                         static_cast<double>(r.sramCapacity));
    hw.setMax(required);
    return r;
}

bool
MemoryEstimate::fits(const McuSpec &spec) const
{
    return diagnose(spec).fits();
}

} // namespace genreuse
