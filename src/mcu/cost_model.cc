#include "cost_model.h"

#include "common/logging.h"

namespace genreuse {

double
CostModel::cycles(const OpCounts &ops) const
{
    double mac_cycles =
        static_cast<double>(ops.macs) / spec_.simdMacsPerCycle;
    double move_cycles =
        static_cast<double>(ops.elemMoves) * spec_.copyCyclesPerElem;
    double alu_cycles =
        static_cast<double>(ops.aluOps) * spec_.aluCyclesPerOp;
    double table_cycles =
        static_cast<double>(ops.tableOps) * spec_.tableCyclesPerOp;
    return (mac_cycles + move_cycles + alu_cycles + table_cycles) /
           spec_.issueFactor;
}

double
CostModel::milliseconds(const OpCounts &ops) const
{
    return cycles(ops) / (spec_.clockMhz * 1e3);
}

double
CostModel::milliseconds(const OpLedger &ledger) const
{
    return milliseconds(ledger.total());
}

double
CostLedger::stageMs(Stage s, const CostModel &model) const
{
    return model.milliseconds(stage(s));
}

double
CostLedger::totalMs(const CostModel &model) const
{
    return model.milliseconds(total());
}

} // namespace genreuse
