#include "cost_model.h"

#include "common/logging.h"

namespace genreuse {

OpCounts &
OpCounts::operator+=(const OpCounts &o)
{
    macs += o.macs;
    elemMoves += o.elemMoves;
    aluOps += o.aluOps;
    tableOps += o.tableOps;
    return *this;
}

OpCounts
OpCounts::operator+(const OpCounts &o) const
{
    OpCounts r = *this;
    r += o;
    return r;
}

bool
OpCounts::isZero() const
{
    return macs == 0 && elemMoves == 0 && aluOps == 0 && tableOps == 0;
}

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Transformation:
        return "Transformation";
      case Stage::Clustering:
        return "Clustering";
      case Stage::Gemm:
        return "GEMM";
      case Stage::Recovering:
        return "Recovering";
      default:
        return "?";
    }
}

double
CostModel::cycles(const OpCounts &ops) const
{
    double mac_cycles =
        static_cast<double>(ops.macs) / spec_.simdMacsPerCycle;
    double move_cycles =
        static_cast<double>(ops.elemMoves) * spec_.copyCyclesPerElem;
    double alu_cycles =
        static_cast<double>(ops.aluOps) * spec_.aluCyclesPerOp;
    double table_cycles =
        static_cast<double>(ops.tableOps) * spec_.tableCyclesPerOp;
    return (mac_cycles + move_cycles + alu_cycles + table_cycles) /
           spec_.issueFactor;
}

double
CostModel::milliseconds(const OpCounts &ops) const
{
    return cycles(ops) / (spec_.clockMhz * 1e3);
}

void
CostLedger::add(Stage stage, const OpCounts &ops)
{
    size_t i = static_cast<size_t>(stage);
    GENREUSE_REQUIRE(i < static_cast<size_t>(Stage::NumStages),
                     "bad stage index");
    stages_[i] += ops;
}

void
CostLedger::merge(const CostLedger &other)
{
    for (size_t i = 0; i < static_cast<size_t>(Stage::NumStages); ++i)
        stages_[i] += other.stages_[i];
}

const OpCounts &
CostLedger::stage(Stage s) const
{
    return stages_[static_cast<size_t>(s)];
}

OpCounts
CostLedger::total() const
{
    OpCounts t;
    for (const auto &s : stages_)
        t += s;
    return t;
}

double
CostLedger::stageMs(Stage s, const CostModel &model) const
{
    return model.milliseconds(stage(s));
}

double
CostLedger::totalMs(const CostModel &model) const
{
    return model.milliseconds(total());
}

void
CostLedger::clear()
{
    for (auto &s : stages_)
        s = OpCounts{};
}

} // namespace genreuse
