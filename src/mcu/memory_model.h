/**
 * @file
 * Static memory footprint model: does a deployed network fit the
 * board's flash (weights) and SRAM (activations + im2col scratch +
 * reuse bookkeeping)? Mirrors the constraint that forced the paper onto
 * CIFAR-scale inputs ("ImageNet would run out of MCU memory", §5.1).
 */

#ifndef GENREUSE_MCU_MEMORY_MODEL_H
#define GENREUSE_MCU_MEMORY_MODEL_H

#include <cstddef>
#include <string>
#include <vector>

#include "mcu_spec.h"

namespace genreuse {

/** Footprint of one layer during execution. */
struct LayerFootprint
{
    std::string name;
    size_t weightBytes = 0;   //!< resident in flash (int8 weights)
    size_t inputBytes = 0;    //!< live input activation
    size_t outputBytes = 0;   //!< live output activation
    size_t scratchBytes = 0;  //!< im2col buffer, centroids, signatures

    /** SRAM needed while this layer runs. */
    size_t sramPeak() const { return inputBytes + outputBytes + scratchBytes; }
};

/**
 * Why (or whether) a network fits a board: per-component requirement,
 * capacity and shortfall, so deployment tooling and the runtime guard
 * can say *what* failed and by how much instead of a bare bool.
 */
struct FitReport
{
    size_t flashRequired = 0;  //!< weights + firmware code allowance
    size_t flashCapacity = 0;
    size_t sramRequired = 0;   //!< peak over all layers
    size_t sramCapacity = 0;
    std::string sramPeakLayer; //!< layer reaching the SRAM peak

    bool flashFits() const { return flashRequired <= flashCapacity; }
    bool sramFits() const { return sramRequired <= sramCapacity; }
    bool fits() const { return flashFits() && sramFits(); }

    /** Bytes missing in flash (0 when it fits). */
    size_t
    flashShortfall() const
    {
        return flashFits() ? 0 : flashRequired - flashCapacity;
    }

    /** Bytes missing in SRAM (0 when it fits). */
    size_t
    sramShortfall() const
    {
        return sramFits() ? 0 : sramRequired - sramCapacity;
    }

    /** One-line human summary naming the failing component(s). */
    std::string describe() const;
};

/** Whole-network deployment estimate. */
struct MemoryEstimate
{
    std::vector<LayerFootprint> layers;

    /** Total flash use (sum of weights plus a fixed code allowance). */
    size_t flashBytes(size_t code_allowance = 128 * 1024) const;

    /** Peak SRAM over all layers. */
    size_t sramPeakBytes() const;

    /** Name of the layer with the largest SRAM footprint; the first
     *  such layer in execution order when several tie. */
    std::string sramPeakLayer() const;

    /**
     * Per-component fit diagnosis against a board. Under the
     * sram_exhausted fault point the reported SRAM capacity is 0, so
     * the guard's downgrade path can be exercised deterministically.
     */
    FitReport diagnose(const McuSpec &spec) const;

    /** True when both flash (weights + spec.codeAllowanceBytes of
     *  firmware) and SRAM fit the given board. */
    bool fits(const McuSpec &spec) const;
};

} // namespace genreuse

#endif // GENREUSE_MCU_MEMORY_MODEL_H
