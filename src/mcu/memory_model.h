/**
 * @file
 * Static memory footprint model: does a deployed network fit the
 * board's flash (weights) and SRAM (activations + im2col scratch +
 * reuse bookkeeping)? Mirrors the constraint that forced the paper onto
 * CIFAR-scale inputs ("ImageNet would run out of MCU memory", §5.1).
 */

#ifndef GENREUSE_MCU_MEMORY_MODEL_H
#define GENREUSE_MCU_MEMORY_MODEL_H

#include <cstddef>
#include <string>
#include <vector>

#include "mcu_spec.h"

namespace genreuse {

/** Footprint of one layer during execution. */
struct LayerFootprint
{
    std::string name;
    size_t weightBytes = 0;   //!< resident in flash (int8 weights)
    size_t inputBytes = 0;    //!< live input activation
    size_t outputBytes = 0;   //!< live output activation
    size_t scratchBytes = 0;  //!< im2col buffer, centroids, signatures

    /** SRAM needed while this layer runs. */
    size_t sramPeak() const { return inputBytes + outputBytes + scratchBytes; }
};

/** Whole-network deployment estimate. */
struct MemoryEstimate
{
    std::vector<LayerFootprint> layers;

    /** Total flash use (sum of weights plus a fixed code allowance). */
    size_t flashBytes(size_t code_allowance = 128 * 1024) const;

    /** Peak SRAM over all layers. */
    size_t sramPeakBytes() const;

    /** Name of the layer with the largest SRAM footprint; the first
     *  such layer in execution order when several tie. */
    std::string sramPeakLayer() const;

    /** True when both flash (weights + spec.codeAllowanceBytes of
     *  firmware) and SRAM fit the given board. */
    bool fits(const McuSpec &spec) const;
};

} // namespace genreuse

#endif // GENREUSE_MCU_MEMORY_MODEL_H
