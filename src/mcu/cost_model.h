/**
 * @file
 * Operation-count based latency model. Kernels report exactly what work
 * they did (MACs, element moves, scalar ALU ops, hash-table probes) via
 * the common op-ledger vocabulary (src/common/trace.h); this module
 * prices those counts in cycles for a given board and converts to
 * milliseconds. This substitutes for running on the real STM32 boards
 * while preserving every quantity the paper's latency claims depend on
 * (see DESIGN.md).
 */

#ifndef GENREUSE_MCU_COST_MODEL_H
#define GENREUSE_MCU_COST_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/trace.h"
#include "mcu_spec.h"

namespace genreuse {

/**
 * Prices OpCounts on a board. All kernels in this library are
 * deterministic in their op counts, so latency is exactly reproducible.
 */
class CostModel
{
  public:
    explicit CostModel(McuSpec spec) : spec_(std::move(spec)) {}

    const McuSpec &spec() const { return spec_; }

    /** Cycle count for the given op mix. */
    double cycles(const OpCounts &ops) const;

    /** Milliseconds for the given op mix. */
    double milliseconds(const OpCounts &ops) const;

    /** Total milliseconds of a ledger (e.g. a trace snapshot). */
    double milliseconds(const OpLedger &ledger) const;

  private:
    McuSpec spec_;
};

/**
 * An OpLedger priceable on a board: the unit that Table 3 rows and all
 * latency numbers are computed from. Accounting (add/merge/stage/
 * total) comes from the common base so kernels below src/mcu can
 * report into it; this adds the milliseconds views.
 */
class CostLedger : public OpLedger
{
  public:
    CostLedger() = default;

    /** Adopt counts recorded elsewhere (e.g. a trace snapshot). */
    explicit CostLedger(const OpLedger &ops) : OpLedger(ops) {}

    /** Milliseconds of one stage on a board. */
    double stageMs(Stage s, const CostModel &model) const;

    /** Total milliseconds on a board. */
    double totalMs(const CostModel &model) const;
};

} // namespace genreuse

#endif // GENREUSE_MCU_COST_MODEL_H
