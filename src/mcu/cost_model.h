/**
 * @file
 * Operation-count based latency model. Kernels report exactly what work
 * they did (MACs, element moves, scalar ALU ops, hash-table probes);
 * the cost model prices those counts in cycles for a given board and
 * converts to milliseconds. This substitutes for running on the real
 * STM32 boards while preserving every quantity the paper's latency
 * claims depend on (see DESIGN.md).
 */

#ifndef GENREUSE_MCU_COST_MODEL_H
#define GENREUSE_MCU_COST_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "mcu_spec.h"

namespace genreuse {

/** Abstract operation counts reported by a kernel. */
struct OpCounts
{
    uint64_t macs = 0;      //!< 8/16-bit SIMD-able multiply-accumulates
    uint64_t elemMoves = 0; //!< element loads+stores (im2col, reorder, ...)
    uint64_t aluOps = 0;    //!< scalar adds/compares outside the MAC path
    uint64_t tableOps = 0;  //!< hash-table probes/updates in clustering

    OpCounts &operator+=(const OpCounts &o);
    OpCounts operator+(const OpCounts &o) const;
    bool isZero() const;
};

/** The reuse pipeline stages of the paper's Table 3 breakdown. */
enum class Stage
{
    Transformation, //!< im2col + reuse-order layout transformation
    Clustering,     //!< LSH hashing + signature grouping + centroids
    Gemm,           //!< centroid x weight multiplication
    Recovering,     //!< duplicating centroid results / summing partials
    NumStages,
};

/** Human-readable stage name. */
const char *stageName(Stage s);

/**
 * Prices OpCounts on a board. All kernels in this library are
 * deterministic in their op counts, so latency is exactly reproducible.
 */
class CostModel
{
  public:
    explicit CostModel(McuSpec spec) : spec_(std::move(spec)) {}

    const McuSpec &spec() const { return spec_; }

    /** Cycle count for the given op mix. */
    double cycles(const OpCounts &ops) const;

    /** Milliseconds for the given op mix. */
    double milliseconds(const OpCounts &ops) const;

  private:
    McuSpec spec_;
};

/**
 * Per-stage accounting for one layer (or one network) execution: the
 * unit that Table 3 rows and all latency numbers are computed from.
 */
class CostLedger
{
  public:
    /** Add op counts to a stage. */
    void add(Stage stage, const OpCounts &ops);

    /** Merge another ledger stage-by-stage. */
    void merge(const CostLedger &other);

    const OpCounts &stage(Stage s) const;

    /** Sum over all stages. */
    OpCounts total() const;

    /** Milliseconds of one stage on a board. */
    double stageMs(Stage s, const CostModel &model) const;

    /** Total milliseconds on a board. */
    double totalMs(const CostModel &model) const;

    void clear();

  private:
    OpCounts stages_[static_cast<size_t>(Stage::NumStages)];
};

} // namespace genreuse

#endif // GENREUSE_MCU_COST_MODEL_H
