/**
 * @file
 * im2col / col2im: the matrix view of a convolution (§3.3 of the paper).
 *
 * A convolution of a (B, C, H, W) input with M kernels of size
 * (C, KH, KW) becomes X(N x Din) x W(Din x M) with N = B*OH*OW and
 * Din = C*KH*KW. The default ("channel-major") column layout matches
 * Figure 6(b): one row holds the tile's values laid out channel by
 * channel, i.e. column index = (c * KH + kh) * KW + kw. Row index =
 * (b * OH + oh) * OW + ow. Reuse *orders* are permutations of these
 * rows/columns and live in src/core/reorder.h.
 */

#ifndef GENREUSE_TENSOR_IM2COL_H
#define GENREUSE_TENSOR_IM2COL_H

#include <cstddef>

#include "tensor.h"

namespace genreuse {

/** Static geometry of one convolution layer. */
struct ConvGeometry
{
    size_t batch = 1;
    size_t inChannels = 1;
    size_t inHeight = 1;
    size_t inWidth = 1;
    size_t outChannels = 1;
    size_t kernelH = 1;
    size_t kernelW = 1;
    size_t stride = 1;
    size_t pad = 0;

    /** Output spatial height. */
    size_t outHeight() const
    {
        return (inHeight + 2 * pad - kernelH) / stride + 1;
    }

    /** Output spatial width. */
    size_t outWidth() const
    {
        return (inWidth + 2 * pad - kernelW) / stride + 1;
    }

    /** Rows of the im2col matrix: B * OH * OW. */
    size_t rows() const { return batch * outHeight() * outWidth(); }

    /** Columns of the im2col matrix: C * KH * KW (paper's K / Din). */
    size_t cols() const { return inChannels * kernelH * kernelW; }

    /** MAC count of the exact convolution (N * Din * Dout). */
    size_t macs() const { return rows() * cols() * outChannels; }

    /** Validity: kernel fits and all dims positive. */
    bool valid() const;
};

/**
 * Expand @p input (B, C, H, W) into the im2col matrix (rows() x cols())
 * in the default channel-major column layout. Zero padding is applied
 * where the kernel hangs over the border.
 */
Tensor im2col(const Tensor &input, const ConvGeometry &geom);

/**
 * Reverse scatter-add of a matrix gradient back to the input layout:
 * the adjoint of im2col, needed by convolution backprop.
 */
Tensor col2im(const Tensor &cols, const ConvGeometry &geom);

/**
 * Flatten a kernel tensor (M, C, KH, KW) into the Din x M weight matrix
 * whose row layout matches the default im2col column layout.
 */
Tensor kernelToMatrix(const Tensor &kernel);

/** Inverse of kernelToMatrix. */
Tensor matrixToKernel(const Tensor &mat, const ConvGeometry &geom);

/**
 * Fold the N x M GEMM output back into the (B, M, OH, OW) activation
 * layout (rows are (b, oh, ow)-major as produced by im2col()).
 */
Tensor gemmOutputToActivation(const Tensor &y, const ConvGeometry &geom);

/** Inverse of gemmOutputToActivation (used by backprop). */
Tensor activationToGemmOutput(const Tensor &act, const ConvGeometry &geom);

} // namespace genreuse

#endif // GENREUSE_TENSOR_IM2COL_H
