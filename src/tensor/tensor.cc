#include "tensor.h"

#include <algorithm>

#include "common/logging.h"

namespace genreuse {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_.elems(), 0.0f)
{
}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)), data_(shape_.elems(), value)
{
}

Tensor::Tensor(Shape shape, const std::vector<float> &data)
    : shape_(std::move(shape)), data_(data.begin(), data.end())
{
    GENREUSE_REQUIRE(data_.size() == shape_.elems(),
                     "data size ", data_.size(), " != shape elems ",
                     shape_.elems());
}

void
Tensor::resize(const Shape &shape)
{
    shape_ = shape;
    data_.resize(shape_.elems());
}

float &
Tensor::at2(size_t r, size_t c)
{
    return data_[r * shape_.cols() + c];
}

float
Tensor::at2(size_t r, size_t c) const
{
    return data_[r * shape_.cols() + c];
}

float &
Tensor::at4(size_t n, size_t c, size_t h, size_t w)
{
    const auto &s = shape_;
    return data_[((n * s.channels() + c) * s.height() + h) * s.width() + w];
}

float
Tensor::at4(size_t n, size_t c, size_t h, size_t w) const
{
    const auto &s = shape_;
    return data_[((n * s.channels() + c) * s.height() + h) * s.width() + w];
}

Tensor
Tensor::reshaped(Shape new_shape) const
{
    GENREUSE_REQUIRE(new_shape.elems() == shape_.elems(),
                     "reshape ", shape_.toString(), " -> ",
                     new_shape.toString(), " changes element count");
    Tensor out;
    out.shape_ = std::move(new_shape);
    out.data_ = data_;
    return out;
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

Tensor
Tensor::randomNormal(Shape shape, Rng &rng, float mean, float stddev)
{
    Tensor t(std::move(shape));
    for (size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.normal(mean, stddev));
    return t;
}

Tensor
Tensor::randomUniform(Shape shape, Rng &rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    for (size_t i = 0; i < t.size(); ++i)
        t[i] = rng.uniformFloat(lo, hi);
    return t;
}

Tensor
Tensor::iota(Shape shape)
{
    Tensor t(std::move(shape));
    for (size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(i);
    return t;
}

} // namespace genreuse
