/**
 * @file
 * General matrix multiplication kernels. The reuse engine expresses
 * convolutions and clustering as GEMMs, so this is the hot path of the
 * whole reproduction: a cache-blocked, register-tiled single-precision
 * kernel plus transpose variants needed by backprop.
 */

#ifndef GENREUSE_TENSOR_GEMM_H
#define GENREUSE_TENSOR_GEMM_H

#include <cstddef>

#include "tensor.h"

namespace genreuse {

/**
 * C = alpha * A x B + beta * C.
 *
 * @param a M x K matrix
 * @param b K x N matrix
 * @param c M x N output, accumulated into when beta != 0
 */
void gemm(const Tensor &a, const Tensor &b, Tensor &c, float alpha = 1.0f,
          float beta = 0.0f);

/** C = alpha * A^T x B + beta * C, with A of shape K x M. */
void gemmTransA(const Tensor &a, const Tensor &b, Tensor &c,
                float alpha = 1.0f, float beta = 0.0f);

/** C = alpha * A x B^T + beta * C, with B of shape N x K. */
void gemmTransB(const Tensor &a, const Tensor &b, Tensor &c,
                float alpha = 1.0f, float beta = 0.0f);

/** Returns A x B as a fresh M x N tensor. */
Tensor matmul(const Tensor &a, const Tensor &b);

/**
 * Raw-pointer GEMM core: C[MxN] (+)= A[MxK] * B[KxN], all row-major with
 * the given leading dimensions. Exposed so reuse kernels can multiply
 * sub-matrices in place without copying slices out.
 */
void gemmRaw(const float *a, const float *b, float *c, size_t m, size_t n,
             size_t k, size_t lda, size_t ldb, size_t ldc,
             bool accumulate = false);

} // namespace genreuse

#endif // GENREUSE_TENSOR_GEMM_H
