/**
 * @file
 * Shape — the dimension vector of a Tensor, with the usual algebra
 * (element counts, equality, pretty printing, flattening).
 */

#ifndef GENREUSE_TENSOR_SHAPE_H
#define GENREUSE_TENSOR_SHAPE_H

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace genreuse {

/**
 * An immutable-ish list of dimensions. Rank-4 shapes follow the NCHW
 * convention (batch, channels, height, width) throughout the library.
 */
class Shape
{
  public:
    Shape() = default;
    Shape(std::initializer_list<size_t> dims) : dims_(dims) {}
    explicit Shape(std::vector<size_t> dims) : dims_(std::move(dims)) {}

    /** Number of dimensions. */
    size_t rank() const { return dims_.size(); }

    /** Size of dimension i. @pre i < rank() */
    size_t dim(size_t i) const;

    /** Alias accessors for the NCHW convention. @pre rank() == 4 */
    size_t batch() const { return dim(0); }
    size_t channels() const { return dim(1); }
    size_t height() const { return dim(2); }
    size_t width() const { return dim(3); }

    /** Rank-2 accessors. @pre rank() == 2 */
    size_t rows() const { return dim(0); }
    size_t cols() const { return dim(1); }

    /** Total number of elements (product of dims; 1 for rank 0). */
    size_t elems() const;

    /** All dimensions. */
    const std::vector<size_t> &dims() const { return dims_; }

    bool operator==(const Shape &other) const { return dims_ == other.dims_; }
    bool operator!=(const Shape &other) const { return !(*this == other); }

    /** Render like "[2, 3, 32, 32]". */
    std::string toString() const;

  private:
    std::vector<size_t> dims_;
};

} // namespace genreuse

#endif // GENREUSE_TENSOR_SHAPE_H
