/**
 * @file
 * Shape — the dimension vector of a Tensor, with the usual algebra
 * (element counts, equality, pretty printing, flattening).
 */

#ifndef GENREUSE_TENSOR_SHAPE_H
#define GENREUSE_TENSOR_SHAPE_H

#include <array>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace genreuse {

/**
 * An immutable-ish list of dimensions. Rank-4 shapes follow the NCHW
 * convention (batch, channels, height, width) throughout the library.
 *
 * Dimensions live inline (rank <= kMaxRank), NOT in a heap vector:
 * shapes are built as temporaries inside the per-forward hot loops
 * (every Tensor::resize({rows, cols}) constructs one), and a heap
 * allocation per temporary breaks the zero-allocation steady-state
 * contract of the arena-backed forward path.
 */
class Shape
{
  public:
    /** Highest rank the library uses (NCHW). */
    static constexpr size_t kMaxRank = 4;

    Shape() = default;
    Shape(std::initializer_list<size_t> dims);
    explicit Shape(const std::vector<size_t> &dims);

    /** Number of dimensions. */
    size_t rank() const { return rank_; }

    /** Size of dimension i. @pre i < rank() */
    size_t dim(size_t i) const;

    /** Alias accessors for the NCHW convention. @pre rank() == 4 */
    size_t batch() const { return dim(0); }
    size_t channels() const { return dim(1); }
    size_t height() const { return dim(2); }
    size_t width() const { return dim(3); }

    /** Rank-2 accessors. @pre rank() == 2 */
    size_t rows() const { return dim(0); }
    size_t cols() const { return dim(1); }

    /** Total number of elements (product of dims; 1 for rank 0). */
    size_t elems() const;

    bool
    operator==(const Shape &other) const
    {
        // Unused trailing slots are kept zeroed, so whole-array
        // comparison is rank-aware.
        return rank_ == other.rank_ && dims_ == other.dims_;
    }
    bool operator!=(const Shape &other) const { return !(*this == other); }

    /** Render like "[2, 3, 32, 32]". */
    std::string toString() const;

  private:
    std::array<size_t, kMaxRank> dims_{};
    size_t rank_ = 0;
};

} // namespace genreuse

#endif // GENREUSE_TENSOR_SHAPE_H
