#include "shape.h"

#include <sstream>

#include "common/logging.h"

namespace genreuse {

size_t
Shape::dim(size_t i) const
{
    GENREUSE_REQUIRE(i < dims_.size(), "dim index ", i, " out of rank ",
                     dims_.size());
    return dims_[i];
}

size_t
Shape::elems() const
{
    size_t n = 1;
    for (size_t d : dims_)
        n *= d;
    return n;
}

std::string
Shape::toString() const
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < dims_.size(); ++i) {
        if (i)
            os << ", ";
        os << dims_[i];
    }
    os << "]";
    return os.str();
}

} // namespace genreuse
