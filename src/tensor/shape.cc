#include "shape.h"

#include <sstream>

#include "common/logging.h"

namespace genreuse {

Shape::Shape(std::initializer_list<size_t> dims)
{
    GENREUSE_REQUIRE(dims.size() <= kMaxRank, "rank ", dims.size(),
                     " exceeds Shape::kMaxRank ", kMaxRank);
    for (size_t d : dims)
        dims_[rank_++] = d;
}

Shape::Shape(const std::vector<size_t> &dims)
{
    GENREUSE_REQUIRE(dims.size() <= kMaxRank, "rank ", dims.size(),
                     " exceeds Shape::kMaxRank ", kMaxRank);
    for (size_t d : dims)
        dims_[rank_++] = d;
}

size_t
Shape::dim(size_t i) const
{
    GENREUSE_REQUIRE(i < rank_, "dim index ", i, " out of rank ", rank_);
    return dims_[i];
}

size_t
Shape::elems() const
{
    size_t n = 1;
    for (size_t i = 0; i < rank_; ++i)
        n *= dims_[i];
    return n;
}

std::string
Shape::toString() const
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < rank_; ++i) {
        if (i)
            os << ", ";
        os << dims_[i];
    }
    os << "]";
    return os.str();
}

} // namespace genreuse
