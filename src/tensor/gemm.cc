#include "gemm.h"

#include <vector>

#include "common/logging.h"
#include "common/simd.h"

namespace genreuse {

// The blocked scalar kernel that used to live here is now the scalar
// oracle of the SIMD dispatch layer (src/common/simd.cc); gemmRaw goes
// through the active ops table. Vector tables are bit-identical to the
// oracle by construction (see simd.h), so callers — including the
// guard's exact-GEMM rung — observe unchanged results at every level.
void
gemmRaw(const float *a, const float *b, float *c, size_t m, size_t n,
        size_t k, size_t lda, size_t ldb, size_t ldc, bool accumulate)
{
    simd::ops().gemmF32(a, b, c, m, n, k, lda, ldb, ldc, accumulate);
}

namespace {

void
checkGemmShapes(const Tensor &a, const Tensor &b, const Tensor &c, size_t m,
                size_t n, size_t k)
{
    GENREUSE_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2 &&
                     c.shape().rank() == 2, "gemm operands must be rank-2");
    GENREUSE_REQUIRE(c.shape().rows() == m && c.shape().cols() == n,
                     "gemm output shape ", c.shape().toString(),
                     " != expected [", m, ", ", n, "]");
    (void)k;
}

} // namespace

void
gemm(const Tensor &a, const Tensor &b, Tensor &c, float alpha, float beta)
{
    size_t m = a.shape().rows(), k = a.shape().cols();
    GENREUSE_REQUIRE(b.shape().rows() == k, "gemm inner dims mismatch: ",
                     a.shape().toString(), " x ", b.shape().toString());
    size_t n = b.shape().cols();
    checkGemmShapes(a, b, c, m, n, k);

    if (beta == 0.0f && alpha == 1.0f) {
        gemmRaw(a.data(), b.data(), c.data(), m, n, k, k, n, n, false);
        return;
    }
    // General path: compute into a scratch buffer, then blend.
    Tensor scratch({m, n});
    gemmRaw(a.data(), b.data(), scratch.data(), m, n, k, k, n, n, false);
    for (size_t i = 0; i < m * n; ++i)
        c[i] = alpha * scratch[i] + beta * c[i];
}

void
gemmTransA(const Tensor &a, const Tensor &b, Tensor &c, float alpha,
           float beta)
{
    // A is K x M; we materialize A^T once (backprop path, not hot).
    size_t k = a.shape().rows(), m = a.shape().cols();
    Tensor at({m, k});
    for (size_t p = 0; p < k; ++p)
        for (size_t i = 0; i < m; ++i)
            at.at2(i, p) = a.at2(p, i);
    gemm(at, b, c, alpha, beta);
}

void
gemmTransB(const Tensor &a, const Tensor &b, Tensor &c, float alpha,
           float beta)
{
    // B is N x K; materialize B^T (backprop path).
    size_t n = b.shape().rows(), k = b.shape().cols();
    Tensor bt({k, n});
    for (size_t j = 0; j < n; ++j)
        for (size_t p = 0; p < k; ++p)
            bt.at2(p, j) = b.at2(j, p);
    gemm(a, bt, c, alpha, beta);
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    Tensor c({a.shape().rows(), b.shape().cols()});
    gemm(a, b, c);
    return c;
}

} // namespace genreuse
