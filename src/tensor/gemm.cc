#include "gemm.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace genreuse {

namespace {

// Cache-blocking parameters tuned for typical L1/L2 sizes; exactness is
// unaffected by these, only speed.
constexpr size_t kBlockM = 64;
constexpr size_t kBlockN = 256;
constexpr size_t kBlockK = 256;

/**
 * Inner kernel: accumulates a (rows x cols) tile of C using 1x8
 * register tiling over the k-panel.
 */
void
microKernel(const float *a, const float *b, float *c, size_t rows,
            size_t cols, size_t kc, size_t lda, size_t ldb, size_t ldc)
{
    for (size_t i = 0; i < rows; ++i) {
        const float *ai = a + i * lda;
        float *ci = c + i * ldc;
        size_t j = 0;
        for (; j + 8 <= cols; j += 8) {
            float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
            float acc4 = 0, acc5 = 0, acc6 = 0, acc7 = 0;
            const float *bj = b + j;
            for (size_t p = 0; p < kc; ++p) {
                float av = ai[p];
                const float *bp = bj + p * ldb;
                acc0 += av * bp[0];
                acc1 += av * bp[1];
                acc2 += av * bp[2];
                acc3 += av * bp[3];
                acc4 += av * bp[4];
                acc5 += av * bp[5];
                acc6 += av * bp[6];
                acc7 += av * bp[7];
            }
            ci[j + 0] += acc0;
            ci[j + 1] += acc1;
            ci[j + 2] += acc2;
            ci[j + 3] += acc3;
            ci[j + 4] += acc4;
            ci[j + 5] += acc5;
            ci[j + 6] += acc6;
            ci[j + 7] += acc7;
        }
        for (; j < cols; ++j) {
            float acc = 0;
            for (size_t p = 0; p < kc; ++p)
                acc += ai[p] * b[p * ldb + j];
            ci[j] += acc;
        }
    }
}

} // namespace

void
gemmRaw(const float *a, const float *b, float *c, size_t m, size_t n,
        size_t k, size_t lda, size_t ldb, size_t ldc, bool accumulate)
{
    if (!accumulate) {
        for (size_t i = 0; i < m; ++i)
            std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    }
    for (size_t i0 = 0; i0 < m; i0 += kBlockM) {
        size_t mi = std::min(kBlockM, m - i0);
        for (size_t p0 = 0; p0 < k; p0 += kBlockK) {
            size_t kp = std::min(kBlockK, k - p0);
            for (size_t j0 = 0; j0 < n; j0 += kBlockN) {
                size_t nj = std::min(kBlockN, n - j0);
                microKernel(a + i0 * lda + p0, b + p0 * ldb + j0,
                            c + i0 * ldc + j0, mi, nj, kp, lda, ldb, ldc);
            }
        }
    }
}

namespace {

void
checkGemmShapes(const Tensor &a, const Tensor &b, const Tensor &c, size_t m,
                size_t n, size_t k)
{
    GENREUSE_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2 &&
                     c.shape().rank() == 2, "gemm operands must be rank-2");
    GENREUSE_REQUIRE(c.shape().rows() == m && c.shape().cols() == n,
                     "gemm output shape ", c.shape().toString(),
                     " != expected [", m, ", ", n, "]");
    (void)k;
}

} // namespace

void
gemm(const Tensor &a, const Tensor &b, Tensor &c, float alpha, float beta)
{
    size_t m = a.shape().rows(), k = a.shape().cols();
    GENREUSE_REQUIRE(b.shape().rows() == k, "gemm inner dims mismatch: ",
                     a.shape().toString(), " x ", b.shape().toString());
    size_t n = b.shape().cols();
    checkGemmShapes(a, b, c, m, n, k);

    if (beta == 0.0f && alpha == 1.0f) {
        gemmRaw(a.data(), b.data(), c.data(), m, n, k, k, n, n, false);
        return;
    }
    // General path: compute into a scratch buffer, then blend.
    Tensor scratch({m, n});
    gemmRaw(a.data(), b.data(), scratch.data(), m, n, k, k, n, n, false);
    for (size_t i = 0; i < m * n; ++i)
        c[i] = alpha * scratch[i] + beta * c[i];
}

void
gemmTransA(const Tensor &a, const Tensor &b, Tensor &c, float alpha,
           float beta)
{
    // A is K x M; we materialize A^T once (backprop path, not hot).
    size_t k = a.shape().rows(), m = a.shape().cols();
    Tensor at({m, k});
    for (size_t p = 0; p < k; ++p)
        for (size_t i = 0; i < m; ++i)
            at.at2(i, p) = a.at2(p, i);
    gemm(at, b, c, alpha, beta);
}

void
gemmTransB(const Tensor &a, const Tensor &b, Tensor &c, float alpha,
           float beta)
{
    // B is N x K; materialize B^T (backprop path).
    size_t n = b.shape().rows(), k = b.shape().cols();
    Tensor bt({k, n});
    for (size_t j = 0; j < n; ++j)
        for (size_t p = 0; p < k; ++p)
            bt.at2(p, j) = b.at2(j, p);
    gemm(a, bt, c, alpha, beta);
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    Tensor c({a.shape().rows(), b.shape().cols()});
    gemm(a, b, c);
    return c;
}

} // namespace genreuse
