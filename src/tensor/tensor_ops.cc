#include "tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace genreuse {

namespace {

void
requireSameSize(const Tensor &a, const Tensor &b, const char *op)
{
    GENREUSE_REQUIRE(a.size() == b.size(), op, ": size mismatch ", a.size(),
                     " vs ", b.size());
}

} // namespace

Tensor
add(const Tensor &a, const Tensor &b)
{
    requireSameSize(a, b, "add");
    Tensor out(a.shape());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + b[i];
    return out;
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    requireSameSize(a, b, "sub");
    Tensor out(a.shape());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] - b[i];
    return out;
}

void
axpy(float alpha, const Tensor &b, Tensor &a)
{
    requireSameSize(a, b, "axpy");
    for (size_t i = 0; i < a.size(); ++i)
        a[i] += alpha * b[i];
}

void
scale(Tensor &a, float alpha)
{
    for (size_t i = 0; i < a.size(); ++i)
        a[i] *= alpha;
}

Tensor
relu(const Tensor &a)
{
    Tensor out(a.shape());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] > 0.0f ? a[i] : 0.0f;
    return out;
}

double
squaredFrobeniusNorm(const Tensor &a)
{
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        s += static_cast<double>(a[i]) * a[i];
    return s;
}

double
frobeniusNorm(const Tensor &a)
{
    return std::sqrt(squaredFrobeniusNorm(a));
}

float
maxAbs(const Tensor &a)
{
    float m = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(a[i]));
    return m;
}

double
meanValue(const Tensor &a)
{
    if (a.size() == 0)
        return 0.0;
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        s += a[i];
    return s / static_cast<double>(a.size());
}

double
meanSquaredError(const Tensor &a, const Tensor &b)
{
    requireSameSize(a, b, "meanSquaredError");
    if (a.size() == 0)
        return 0.0;
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        double d = static_cast<double>(a[i]) - b[i];
        s += d * d;
    }
    return s / static_cast<double>(a.size());
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    requireSameSize(a, b, "maxAbsDiff");
    float m = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

double
relativeError(const Tensor &exact, const Tensor &approx)
{
    requireSameSize(exact, approx, "relativeError");
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < exact.size(); ++i) {
        double d = static_cast<double>(exact[i]) - approx[i];
        num += d * d;
        den += static_cast<double>(exact[i]) * exact[i];
    }
    if (den == 0.0)
        return num == 0.0 ? 0.0 : 1.0;
    return std::sqrt(num / den);
}

Tensor
softmaxRows(const Tensor &logits)
{
    GENREUSE_REQUIRE(logits.shape().rank() == 2,
                     "softmaxRows expects rank-2 input");
    size_t rows = logits.shape().rows(), cols = logits.shape().cols();
    Tensor out(logits.shape());
    for (size_t r = 0; r < rows; ++r) {
        float mx = logits.at2(r, 0);
        for (size_t c = 1; c < cols; ++c)
            mx = std::max(mx, logits.at2(r, c));
        double sum = 0.0;
        for (size_t c = 0; c < cols; ++c) {
            float e = std::exp(logits.at2(r, c) - mx);
            out.at2(r, c) = e;
            sum += e;
        }
        float inv = static_cast<float>(1.0 / sum);
        for (size_t c = 0; c < cols; ++c)
            out.at2(r, c) *= inv;
    }
    return out;
}

Tensor
transpose(const Tensor &a)
{
    GENREUSE_REQUIRE(a.shape().rank() == 2, "transpose expects rank-2");
    size_t rows = a.shape().rows(), cols = a.shape().cols();
    Tensor out({cols, rows});
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            out.at2(c, r) = a.at2(r, c);
    return out;
}

} // namespace genreuse
