/**
 * @file
 * Tensor — a dense, row-major, float32 n-dimensional array. This is the
 * numeric substrate for the whole reproduction: the NN framework, the
 * reuse engine and the analytic models all operate on Tensors.
 */

#ifndef GENREUSE_TENSOR_TENSOR_H
#define GENREUSE_TENSOR_TENSOR_H

#include <vector>

#include "common/aligned.h"
#include "common/rng.h"
#include "shape.h"

namespace genreuse {

/**
 * Dense float tensor with contiguous row-major storage. Rank-4 tensors
 * are NCHW. Copying is deep; moves are cheap. The backing store is
 * 64-byte aligned (AlignedVec) so SIMD kernels can assume aligned
 * bases for freshly-allocated tensors.
 */
class Tensor
{
  public:
    using Storage = AlignedVec<float>;

    /** An empty (rank-0, single element) tensor. */
    Tensor() : shape_({}), data_(1, 0.0f) {}

    /** A zero-filled tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** A tensor of the given shape filled with @p value. */
    Tensor(Shape shape, float value);

    /** A tensor wrapping a copy of existing data. @pre sizes match */
    Tensor(Shape shape, const std::vector<float> &data);

    const Shape &shape() const { return shape_; }
    size_t size() const { return data_.size(); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Flat element access. */
    float &operator[](size_t i) { return data_[i]; }
    float operator[](size_t i) const { return data_[i]; }

    /** Rank-2 element access. @pre rank() == 2 */
    float &at2(size_t r, size_t c);
    float at2(size_t r, size_t c) const;

    /** Rank-4 (NCHW) element access. @pre rank() == 4 */
    float &at4(size_t n, size_t c, size_t h, size_t w);
    float at4(size_t n, size_t c, size_t h, size_t w) const;

    /**
     * Reinterpret as a different shape with the same element count.
     * Returns a copy (storage is row-major so this is a plain relabel).
     */
    Tensor reshaped(Shape new_shape) const;

    /** Fill every element with @p value. */
    void fill(float value);

    /** Set all elements to zero. */
    void zero() { fill(0.0f); }

    /**
     * Re-shape in place, reusing the existing buffer when its capacity
     * suffices (no heap traffic in steady state). Element contents are
     * unspecified afterwards — callers that need zeros must call
     * zero(). This is the scratch-reuse primitive behind the
     * zero-allocation forward path.
     */
    void resize(const Shape &shape);

    // ---- factories -------------------------------------------------

    static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
    static Tensor full(Shape shape, float v) { return {std::move(shape), v}; }

    /** I.i.d. N(mean, stddev) entries. */
    static Tensor randomNormal(Shape shape, Rng &rng, float mean = 0.0f,
                               float stddev = 1.0f);

    /** I.i.d. uniform [lo, hi) entries. */
    static Tensor randomUniform(Shape shape, Rng &rng, float lo = 0.0f,
                                float hi = 1.0f);

    /** Elements 0, 1, 2, ... in row-major order (handy in tests). */
    static Tensor iota(Shape shape);

  private:
    Shape shape_;
    Storage data_;
};

} // namespace genreuse

#endif // GENREUSE_TENSOR_TENSOR_H
