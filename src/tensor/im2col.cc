#include "im2col.h"

#include "common/logging.h"

namespace genreuse {

bool
ConvGeometry::valid() const
{
    if (batch == 0 || inChannels == 0 || inHeight == 0 || inWidth == 0 ||
        outChannels == 0 || kernelH == 0 || kernelW == 0 || stride == 0) {
        return false;
    }
    return inHeight + 2 * pad >= kernelH && inWidth + 2 * pad >= kernelW;
}

namespace {

void
checkGeometry(const ConvGeometry &geom)
{
    GENREUSE_REQUIRE(geom.valid(), "invalid convolution geometry");
}

} // namespace

Tensor
im2col(const Tensor &input, const ConvGeometry &geom)
{
    checkGeometry(geom);
    GENREUSE_REQUIRE(input.shape() ==
                     Shape({geom.batch, geom.inChannels, geom.inHeight,
                            geom.inWidth}),
                     "im2col input shape ", input.shape().toString(),
                     " mismatches geometry");

    const size_t oh = geom.outHeight(), ow = geom.outWidth();
    Tensor out({geom.rows(), geom.cols()});
    size_t row = 0;
    for (size_t b = 0; b < geom.batch; ++b) {
        for (size_t y = 0; y < oh; ++y) {
            for (size_t x = 0; x < ow; ++x, ++row) {
                float *dst = out.data() + row * geom.cols();
                size_t col = 0;
                for (size_t c = 0; c < geom.inChannels; ++c) {
                    for (size_t kh = 0; kh < geom.kernelH; ++kh) {
                        // Signed source row; padding yields zeros.
                        long sy = static_cast<long>(y * geom.stride + kh) -
                                  static_cast<long>(geom.pad);
                        for (size_t kw = 0; kw < geom.kernelW; ++kw, ++col) {
                            long sx =
                                static_cast<long>(x * geom.stride + kw) -
                                static_cast<long>(geom.pad);
                            if (sy < 0 || sx < 0 ||
                                sy >= static_cast<long>(geom.inHeight) ||
                                sx >= static_cast<long>(geom.inWidth)) {
                                dst[col] = 0.0f;
                            } else {
                                dst[col] = input.at4(b, c, sy, sx);
                            }
                        }
                    }
                }
            }
        }
    }
    return out;
}

Tensor
col2im(const Tensor &cols, const ConvGeometry &geom)
{
    checkGeometry(geom);
    GENREUSE_REQUIRE(cols.shape() == Shape({geom.rows(), geom.cols()}),
                     "col2im input shape ", cols.shape().toString(),
                     " mismatches geometry");

    const size_t oh = geom.outHeight(), ow = geom.outWidth();
    Tensor out({geom.batch, geom.inChannels, geom.inHeight, geom.inWidth});
    size_t row = 0;
    for (size_t b = 0; b < geom.batch; ++b) {
        for (size_t y = 0; y < oh; ++y) {
            for (size_t x = 0; x < ow; ++x, ++row) {
                const float *src = cols.data() + row * geom.cols();
                size_t col = 0;
                for (size_t c = 0; c < geom.inChannels; ++c) {
                    for (size_t kh = 0; kh < geom.kernelH; ++kh) {
                        long sy = static_cast<long>(y * geom.stride + kh) -
                                  static_cast<long>(geom.pad);
                        for (size_t kw = 0; kw < geom.kernelW; ++kw, ++col) {
                            long sx =
                                static_cast<long>(x * geom.stride + kw) -
                                static_cast<long>(geom.pad);
                            if (sy >= 0 && sx >= 0 &&
                                sy < static_cast<long>(geom.inHeight) &&
                                sx < static_cast<long>(geom.inWidth)) {
                                out.at4(b, c, sy, sx) += src[col];
                            }
                        }
                    }
                }
            }
        }
    }
    return out;
}

Tensor
kernelToMatrix(const Tensor &kernel)
{
    GENREUSE_REQUIRE(kernel.shape().rank() == 4,
                     "kernel must be rank-4 (M, C, KH, KW)");
    const size_t m = kernel.shape().dim(0);
    const size_t din = kernel.shape().dim(1) * kernel.shape().dim(2) *
                       kernel.shape().dim(3);
    Tensor w({din, m});
    // Kernel storage is already [c][kh][kw]-major per filter; copy each
    // filter into a column.
    for (size_t f = 0; f < m; ++f) {
        const float *src = kernel.data() + f * din;
        for (size_t d = 0; d < din; ++d)
            w.at2(d, f) = src[d];
    }
    return w;
}

Tensor
matrixToKernel(const Tensor &mat, const ConvGeometry &geom)
{
    const size_t din = geom.cols(), m = geom.outChannels;
    GENREUSE_REQUIRE(mat.shape() == Shape({din, m}),
                     "weight matrix shape ", mat.shape().toString(),
                     " mismatches geometry");
    Tensor kernel({m, geom.inChannels, geom.kernelH, geom.kernelW});
    for (size_t f = 0; f < m; ++f) {
        float *dst = kernel.data() + f * din;
        for (size_t d = 0; d < din; ++d)
            dst[d] = mat.at2(d, f);
    }
    return kernel;
}

Tensor
gemmOutputToActivation(const Tensor &y, const ConvGeometry &geom)
{
    const size_t oh = geom.outHeight(), ow = geom.outWidth();
    const size_t m = geom.outChannels;
    GENREUSE_REQUIRE(y.shape() == Shape({geom.rows(), m}),
                     "GEMM output shape ", y.shape().toString(),
                     " mismatches geometry");
    Tensor act({geom.batch, m, oh, ow});
    size_t row = 0;
    for (size_t b = 0; b < geom.batch; ++b)
        for (size_t yy = 0; yy < oh; ++yy)
            for (size_t xx = 0; xx < ow; ++xx, ++row)
                for (size_t c = 0; c < m; ++c)
                    act.at4(b, c, yy, xx) = y.at2(row, c);
    return act;
}

Tensor
activationToGemmOutput(const Tensor &act, const ConvGeometry &geom)
{
    const size_t oh = geom.outHeight(), ow = geom.outWidth();
    const size_t m = geom.outChannels;
    GENREUSE_REQUIRE(act.shape() == Shape({geom.batch, m, oh, ow}),
                     "activation shape ", act.shape().toString(),
                     " mismatches geometry");
    Tensor y({geom.rows(), m});
    size_t row = 0;
    for (size_t b = 0; b < geom.batch; ++b)
        for (size_t yy = 0; yy < oh; ++yy)
            for (size_t xx = 0; xx < ow; ++xx, ++row)
                for (size_t c = 0; c < m; ++c)
                    y.at2(row, c) = act.at4(b, c, yy, xx);
    return y;
}

} // namespace genreuse
