/**
 * @file
 * Non-owning strided views over float storage. Reuse kernels slice the
 * im2col matrix into sub-matrices (vertical panels) and column bands
 * (horizontal panels) without copying; this is the view type they use.
 */

#ifndef GENREUSE_TENSOR_MATRIX_VIEW_H
#define GENREUSE_TENSOR_MATRIX_VIEW_H

#include <cstddef>

namespace genreuse {

/**
 * A set of equally-shaped "items" (neuron vectors or flattened neuron
 * blocks) laid out with arbitrary strides:
 *
 *   element j of item i lives at base[i * itemStride + j * elemStride].
 *
 * A vertical panel of a row-major matrix is items = rows
 * (itemStride = ld, elemStride = 1); a horizontal panel's columns are
 * items = columns (itemStride = 1, elemStride = ld).
 */
struct StridedItems
{
    const float *base = nullptr;
    size_t count = 0;      //!< number of items
    size_t length = 0;     //!< elements per item
    size_t itemStride = 0; //!< flat stride between consecutive items
    size_t elemStride = 1; //!< flat stride between elements of one item

    /** Element @p j of item @p i. */
    float
    at(size_t i, size_t j) const
    {
        return base[i * itemStride + j * elemStride];
    }

    /** True when items are contiguous rows (fast GEMM-able layout). */
    bool contiguousRows() const { return elemStride == 1; }
};

} // namespace genreuse

#endif // GENREUSE_TENSOR_MATRIX_VIEW_H
