/**
 * @file
 * Elementwise operations and reductions on Tensors, including the
 * squared Frobenius norm that powers the paper's accuracy model (§4.1).
 */

#ifndef GENREUSE_TENSOR_TENSOR_OPS_H
#define GENREUSE_TENSOR_TENSOR_OPS_H

#include "tensor.h"

namespace genreuse {

/** out[i] = a[i] + b[i]. @pre identical element counts */
Tensor add(const Tensor &a, const Tensor &b);

/** out[i] = a[i] - b[i]. @pre identical element counts */
Tensor sub(const Tensor &a, const Tensor &b);

/** In-place a[i] += alpha * b[i]. @pre identical element counts */
void axpy(float alpha, const Tensor &b, Tensor &a);

/** In-place a[i] *= alpha. */
void scale(Tensor &a, float alpha);

/** out[i] = max(a[i], 0). */
Tensor relu(const Tensor &a);

/** Squared Frobenius norm: sum of squared elements. */
double squaredFrobeniusNorm(const Tensor &a);

/** Frobenius norm. */
double frobeniusNorm(const Tensor &a);

/** max_i |a[i]|. */
float maxAbs(const Tensor &a);

/** Mean of all elements. */
double meanValue(const Tensor &a);

/** Mean of squared differences between two tensors of the same size. */
double meanSquaredError(const Tensor &a, const Tensor &b);

/** max_i |a[i] - b[i]|. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

/**
 * Relative Frobenius error ||a - b||_F / ||a||_F (0 when both are
 * zero). Used everywhere we compare a reuse approximation against the
 * exact convolution output.
 */
double relativeError(const Tensor &exact, const Tensor &approx);

/** Row-wise softmax of a rank-2 tensor (numerically stabilized). */
Tensor softmaxRows(const Tensor &logits);

/** Transpose of a rank-2 tensor. */
Tensor transpose(const Tensor &a);

} // namespace genreuse

#endif // GENREUSE_TENSOR_TENSOR_OPS_H
