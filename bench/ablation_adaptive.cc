/**
 * @file
 * Ablation of adaptive per-input pattern switching — the extension of
 * the paper's §4(i) observation that ideal selection is per input. A
 * mixed stream of redundant (in-distribution) and unstructured (noise)
 * inputs runs through one conv layer under three policies: a static
 * aggressive pattern, a static conservative pattern, and the adaptive
 * dispatcher that probes each input's redundancy. Adaptive should get
 * the aggressive latency on redundant inputs while avoiding the
 * aggressive error on unstructured ones.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/adaptive.h"
#include "core/latency_model.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Ablation: adaptive per-input pattern switching "
                "===\n\n");
    CostModel model(McuSpec::stm32f469i());
    Rng rng(77);

    ConvGeometry geom;
    geom.batch = 1;
    geom.inChannels = 3;
    geom.inHeight = 32;
    geom.inWidth = 32;
    geom.outChannels = 32;
    geom.kernelH = 5;
    geom.kernelW = 5;
    geom.stride = 1;
    geom.pad = 2;
    Tensor w = Tensor::randomNormal({geom.cols(), geom.outChannels}, rng,
                                    0.0f, 0.1f);

    // Fit both strategies on in-distribution data.
    SyntheticConfig cfg;
    cfg.numSamples = 10;
    cfg.noiseStddev = 0.05f;
    Dataset id_data = makeSyntheticCifar(cfg);
    Tensor fit_x = im2col(id_data.gatherImages({0}), geom);

    ReusePattern fast;
    fast.granularity = 25;
    fast.numHashes = 2;
    auto aggressive = std::make_shared<ReuseConvAlgo>(fast,
                                                      HashMode::Learned, 1);
    aggressive->fit(fit_x, geom);
    ReusePattern safe;
    safe.granularity = 25;
    safe.numHashes = 8;
    auto conservative = std::make_shared<ReuseConvAlgo>(safe,
                                                        HashMode::Learned,
                                                        2);
    conservative->fit(fit_x, geom);
    AdaptiveReuseConvAlgo adaptive(aggressive, conservative, 0.5,
                                   /*probe_rows=*/96, /*probe_hashes=*/8);

    // A mixed stream: half redundant frames, half unstructured noise.
    const size_t frames = 16;
    Rng stream_rng(78);
    std::vector<Tensor> stream;
    size_t noise_frames = 0;
    for (size_t i = 0; i < frames; ++i) {
        if (i % 2 == 0) {
            stream.push_back(
                im2col(id_data.gatherImages({1 + i / 2}), geom));
        } else {
            Tensor noise = Tensor::randomNormal({1, 3, 32, 32},
                                                stream_rng, 0.0f, 1.0f);
            stream.push_back(im2col(noise, geom));
            noise_frames++;
        }
    }

    struct Policy
    {
        const char *name;
        const char *key;
        ConvAlgo *algo;
    };
    Policy policies[] = {
        {"static aggressive (H=2)", "aggressive", aggressive.get()},
        {"static conservative (H=8)", "conservative", conservative.get()},
        {"adaptive (probe)", "adaptive", &adaptive}};

    BenchJson bj("ablation_adaptive");
    bj.meta("frames", static_cast<double>(frames));
    TextTable t;
    t.setHeader({"policy", "mean rel. error", "worst rel. error",
                 "mean ms/frame", "aggressive used"});
    for (const Policy &pol : policies) {
        double err_sum = 0.0, err_worst = 0.0, ms_sum = 0.0;
        size_t aggressive_used = 0;
        for (const Tensor &x : stream) {
            Tensor exact = matmul(x, w);
            CostLedger ledger;
            Tensor approx = pol.algo->multiply(x, w, geom, &ledger);
            double err = relativeError(exact, approx);
            err_sum += err;
            err_worst = std::max(err_worst, err);
            ms_sum += ledger.totalMs(model);
            if (pol.algo == &adaptive && adaptive.lastUsedAggressive())
                aggressive_used++;
        }
        t.addRow({pol.name, formatDouble(err_sum / frames, 4),
                  formatDouble(err_worst, 4),
                  formatDouble(ms_sum / frames, 2),
                  pol.algo == &adaptive
                      ? std::to_string(aggressive_used) + "/" +
                            std::to_string(frames)
                      : "-"});
        bj.record(std::string(pol.key) + "/meanRelError", err_sum / frames);
        bj.record(std::string(pol.key) + "/worstRelError", err_worst);
        bj.record(std::string(pol.key) + "/meanMsPerFrame",
                  ms_sum / frames);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected shape: adaptive matches the aggressive policy's "
                "latency on redundant frames but avoids its worst-case "
                "error on unstructured frames (it routes them to the "
                "conservative pattern).\n");
    return 0;
}
