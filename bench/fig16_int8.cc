/**
 * @file
 * Figure 16 reproduction: generalized reuse under INT8 *linear*
 * quantization (§5.3.8) — the alternative to the fixed-point format
 * used in the main experiments. Weights and the input activations are
 * affine-quantized (round-tripped through int8); the SOTA-vs-ours
 * spectra are then compared on the F4 board.
 */

#include <cstdio>

#include "bench_common.h"
#include "quant/int8_quant.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Figure 16: INT8 linear quantization, CifarNet, "
                "STM32F469I ===\n\n");
    CostModel model(McuSpec::stm32f469i());
    BenchJson bj("fig16_int8");
    bj.meta("board", model.spec().name);
    Workbench wb = makeWorkbench(ModelKind::CifarNet);

    // Deploy with INT8 affine quantization of all weights and of the
    // input activations (the deployment-simulation round trip).
    for (auto *conv : wb.net.convLayers()) {
        conv->kernel().value = fakeQuantizeInt8(conv->kernel().value);
        conv->bias().value = fakeQuantizeInt8(conv->bias().value);
    }
    wb.test.images = fakeQuantizeInt8(wb.test.images);
    wb.train.images = fakeQuantizeInt8(wb.train.images);
    wb.baselineAccuracy = evaluate(wb.net, wb.test, evalImages(16));
    std::printf("INT8 baseline exact accuracy: %.4f\n\n",
                wb.baselineAccuracy);
    bj.record("int8BaselineAccuracy", wb.baselineAccuracy);

    auto sota = sotaSpectrum(wb, ModelKind::CifarNet, model, evalImages(32));
    auto ours =
        generalizedSpectrum(wb, ModelKind::CifarNet, model, evalImages(32));
    printSeries("SOTA (conventional reuse, INT8):", sota);
    printSeries("Generalized reuse (ours, INT8):", ours);
    bj.addSeries("cifarnet/sota", sota);
    bj.addSeries("cifarnet/ours", ours);

    SpectrumComparison cmp = compareSpectra(sota, ours);
    std::printf("headline: %.2fx speedup at matched accuracy, +%.1f%% "
                "accuracy at matched latency\n",
                cmp.speedupAtMatchedAccuracy,
                100.0 * cmp.accuracyGainAtMatchedLatency);
    bj.record("speedupAtMatchedAccuracy", cmp.speedupAtMatchedAccuracy);
    bj.record("accuracyGainAtMatchedLatency",
              cmp.accuracyGainAtMatchedLatency);
    std::printf("Expected shape (paper): generalized reuse dominates the "
                "SOTA spectrum under INT8 as well.\n");
    return 0;
}
