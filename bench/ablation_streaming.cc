/**
 * @file
 * Ablation of the space-efficient streaming pipeline: SRAM scratch of
 * the dense (im2col-materializing) reuse pipeline versus the streaming
 * one, for the paper's convolution layers, plus an output-equivalence
 * check. On MCUs the im2col matrix is the dominant SRAM consumer; the
 * streaming path (following the space-efficient TREC lineage the paper
 * builds on) replaces it with a one-row buffer plus centroid state.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/streaming.h"
#include "tensor/tensor_ops.h"

using namespace genreuse;
using namespace genreuse::bench;

namespace {

struct LayerCase
{
    const char *name;
    size_t channels, hw, filters, kernel, stride, pad;
};

} // namespace

int
main()
{
    std::printf("=== Ablation: streaming (space-efficient) reuse vs dense "
                "im2col pipeline ===\n\n");
    const LayerCase cases[] = {
        {"CifarNet.conv1", 3, 32, 64, 5, 1, 2},
        {"CifarNet.conv2", 64, 16, 64, 5, 1, 2},
        {"ZfNet.conv2", 96, 8, 256, 5, 1, 2},
        {"SqueezeNet.Fire2.expand3x3", 16, 16, 64, 3, 1, 1},
    };

    BenchJson bj("ablation_streaming");
    TextTable t;
    t.setHeader({"layer", "im2col KB", "streaming KB", "saving",
                 "r_t", "output match"});
    for (const LayerCase &c : cases) {
        ConvGeometry geom;
        geom.batch = 1;
        geom.inChannels = c.channels;
        geom.inHeight = c.hw;
        geom.inWidth = c.hw;
        geom.outChannels = c.filters;
        geom.kernelH = c.kernel;
        geom.kernelW = c.kernel;
        geom.stride = c.stride;
        geom.pad = c.pad;

        // A redundant input activation.
        Rng rng(31);
        Tensor protos = Tensor::randomNormal({4, c.channels}, rng);
        Tensor input({1, c.channels, c.hw, c.hw});
        // Prototypes repeat in 4x4 blocks, like textured activations.
        Rng pick(32);
        const size_t blocks = c.hw / 4;
        std::vector<size_t> block_proto(blocks * blocks);
        for (auto &b : block_proto)
            b = pick.uniformInt(4);
        for (size_t y = 0; y < c.hw; ++y)
            for (size_t x = 0; x < c.hw; ++x) {
                size_t p = block_proto[(y / 4) * blocks + x / 4];
                for (size_t ch = 0; ch < c.channels; ++ch)
                    input.at4(0, ch, y, x) = protos.at2(p, ch);
            }
        Tensor kernel = Tensor::randomNormal(
            {c.filters, c.channels, c.kernel, c.kernel}, rng, 0.0f, 0.1f);
        Tensor bias({c.filters});

        VerticalSlicing slicing = VerticalSlicing::plan(
            geom.cols(), c.kernel * c.kernel, 1);
        Rng frng(33);
        auto families =
            randomVerticalFamilies(slicing, geom.cols(), 4, frng);

        StreamingReuseResult res = streamingReuseConv(
            input, kernel, bias, geom, {}, slicing, families);

        // Dense reference for the equivalence column.
        Tensor cols = im2col(input, geom);
        Tensor y = verticalReuseMultiply(cols, kernelToMatrix(kernel),
                                         slicing, families, nullptr,
                                         nullptr);
        Tensor act = gemmOutputToActivation(y, geom);
        bool match = maxAbsDiff(act, res.activation) < 1e-3f;

        t.addRow({c.name, formatDouble(res.im2colBytes / 1024.0, 1),
                  formatDouble(res.peakScratchBytes / 1024.0, 1),
                  formatSpeedup(static_cast<double>(res.im2colBytes) /
                                res.peakScratchBytes),
                  formatDouble(res.stats.redundancyRatio(), 3),
                  match ? "yes" : "NO"});
        bj.record(std::string(c.name) + "/im2colKB",
                  res.im2colBytes / 1024.0);
        bj.record(std::string(c.name) + "/streamingKB",
                  res.peakScratchBytes / 1024.0);
        bj.record(std::string(c.name) + "/outputMatch", match ? 1.0 : 0.0);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected shape: streaming cuts the reuse pipeline's "
                "activation-scratch by several x when r_t is high (few "
                "centroids to keep); the saving shrinks as r_t drops, "
                "since the centroid state approaches the matrix it "
                "replaces. Clustering decisions are identical to the "
                "dense pipeline (output match = yes).\n");
    return 0;
}
