/**
 * @file
 * Figure 10 reproduction: the Figure 9 experiment on the STM32F7
 * (Cortex-M7) model. The paper's observations: total inference time is
 * less than half of the F4's (dual-issue + 20% faster clock), and the
 * generalized-reuse benefits persist across boards.
 */

#include <cstdio>

#include "bench_common.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Figure 10: end-to-end accuracy vs latency, "
                "STM32F767ZI (Cortex-M7) ===\n\n");
    CostModel f7(McuSpec::stm32f767zi());
    CostModel f4(McuSpec::stm32f469i());
    BenchJson bj("fig10_end_to_end_f7");
    bj.meta("board", f7.spec().name);

    const ModelKind kinds[] = {ModelKind::CifarNet, ModelKind::ZfNet,
                               ModelKind::SqueezeNet,
                               ModelKind::SqueezeNetBypass};
    for (ModelKind kind : kinds) {
        Workbench wb = makeWorkbench(kind);
        std::printf("--- %s (baseline exact accuracy %.4f) ---\n",
                    modelName(kind), wb.baselineAccuracy);

        auto sota = sotaSpectrum(wb, kind, f7, evalImages(32));
        auto ours = generalizedSpectrum(wb, kind, f7, evalImages(32));
        printSeries("SOTA (conventional reuse):", sota);
        printSeries("Generalized reuse (ours):", ours);

        SpectrumComparison cmp = compareSpectra(sota, ours);
        std::printf("headline: %.2fx speedup at matched accuracy, "
                    "+%.1f%% accuracy at matched latency\n",
                    cmp.speedupAtMatchedAccuracy,
                    100.0 * cmp.accuracyGainAtMatchedLatency);

        // Cross-board check (paper §5.2 third observation): F7 total
        // latency is less than half of the F4's for the same config.
        Measurement m4 = measureNetwork(wb.net, wb.test, f4, 8);
        Measurement m7 = measureNetwork(wb.net, wb.test, f7, 8);
        std::printf("cross-board: exact inference %.1f ms (F4) vs "
                    "%.1f ms (F7) -> F4/F7 = %.2fx\n\n",
                    m4.perImageMs, m7.perImageMs,
                    m4.perImageMs / m7.perImageMs);

        const std::string name = modelName(kind);
        bj.record(name + "/speedupAtMatchedAccuracy",
                  cmp.speedupAtMatchedAccuracy);
        bj.record(name + "/accuracyGainAtMatchedLatency",
                  cmp.accuracyGainAtMatchedLatency);
        bj.record(name + "/crossBoardF4overF7",
                  m4.perImageMs / m7.perImageMs);
        bj.addSeries(name + "/sota", sota);
        bj.addSeries(name + "/ours", ours);
    }
    return 0;
}
