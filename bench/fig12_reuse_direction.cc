/**
 * @file
 * Figure 12 reproduction: the effect of the reuse *direction* on
 * CifarNet — M1 (vertical, deep reuse's direction) versus M2
 * (horizontal, the direction this paper introduces). The paper finds
 * M1 consistently better on Conv2 while M2 sometimes wins on Conv1.
 */

#include <cstdio>

#include "bench_common.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Figure 12: reuse direction (M1 vertical vs M2 "
                "horizontal), CifarNet ===\n\n");
    CostModel model(McuSpec::stm32f469i());
    BenchJson bj("fig12_reuse_direction");
    bj.meta("board", model.spec().name);
    Workbench wb = makeWorkbench(ModelKind::CifarNet);
    std::printf("baseline exact accuracy: %.4f\n\n", wb.baselineAccuracy);
    bj.record("baselineAccuracy", wb.baselineAccuracy);

    for (const char *layer_name : {"conv1", "conv2"}) {
        Conv2D *layer = wb.net.findConv(layer_name);
        TextTable t;
        t.setHeader({"direction", "L", "H", "accuracy", "layer ms", "r_t"});
        for (size_t h : {2, 4, 6}) {
            ReusePattern m1;
            m1.direction = ReuseDirection::Vertical;
            m1.granularity = layer->kernelSize() * layer->kernelSize();
            m1.numHashes = h;

            ReusePattern m2;
            m2.direction = ReuseDirection::Horizontal;
            m2.granularity = 0; // one band over the whole output
            m2.numHashes = h;

            for (auto [label, p] :
                 {std::pair<const char *, ReusePattern>{"M1", m1},
                  std::pair<const char *, ReusePattern>{"M2", m2}}) {
                SingleLayerResult r =
                    measureSingleLayer(wb, *layer, p, model,
                                       evalImages(40));
                t.addRow({label, std::to_string(p.granularity),
                          std::to_string(h), formatDouble(r.accuracy, 4),
                          formatDouble(r.layerReuseMs, 2),
                          formatDouble(r.redundancy, 3)});
                const std::string key = std::string(layer_name) + "/" +
                                        label + "/H" + std::to_string(h);
                bj.record(key + "/accuracy", r.accuracy);
                bj.record(key + "/layerMs", r.layerReuseMs);
            }
        }
        std::printf("--- CifarNet %s ---\n%s\n", layer_name,
                    t.render().c_str());
    }
    std::printf("Paper's finding: M1 wins on Conv2; M2 sometimes wins on "
                "Conv1.\n");
    return 0;
}
