/**
 * @file
 * Figure 9 reproduction: end-to-end accuracy/latency spectra of the
 * four networks on the STM32F4 (Cortex-M4) model — conventional reuse
 * (SOTA/TREC) versus generalized reuse. The paper reports 1.03-2.2x
 * speedups at matched accuracy or 1-8% accuracy gains at matched
 * latency; this bench prints both headline numbers per network.
 */

#include <cstdio>

#include "bench_common.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Figure 9: end-to-end accuracy vs latency, "
                "STM32F469I (Cortex-M4) ===\n\n");
    CostModel model(McuSpec::stm32f469i());
    BenchJson bj("fig09_end_to_end_f4");
    bj.meta("board", model.spec().name);

    const ModelKind kinds[] = {ModelKind::CifarNet, ModelKind::ZfNet,
                               ModelKind::SqueezeNet,
                               ModelKind::SqueezeNetBypass};
    for (ModelKind kind : kinds) {
        Workbench wb = makeWorkbench(kind);
        std::printf("--- %s (baseline exact accuracy %.4f) ---\n",
                    modelName(kind), wb.baselineAccuracy);

        auto sota = sotaSpectrum(wb, kind, model, evalImages(32));
        auto ours = generalizedSpectrum(wb, kind, model, evalImages(32));
        printSeries("SOTA (conventional reuse):", sota);
        printSeries("Generalized reuse (ours):", ours);

        SpectrumComparison cmp = compareSpectra(sota, ours);
        std::printf("headline: %.2fx speedup at matched accuracy, "
                    "+%.1f%% accuracy at matched latency\n\n",
                    cmp.speedupAtMatchedAccuracy,
                    100.0 * cmp.accuracyGainAtMatchedLatency);

        const std::string name = modelName(kind);
        bj.record(name + "/baselineAccuracy", wb.baselineAccuracy);
        bj.record(name + "/speedupAtMatchedAccuracy",
                  cmp.speedupAtMatchedAccuracy);
        bj.record(name + "/accuracyGainAtMatchedLatency",
                  cmp.accuracyGainAtMatchedLatency);
        bj.addSeries(name + "/sota", sota);
        bj.addSeries(name + "/ours", ours);
    }
    return 0;
}
