/**
 * @file
 * Ablation of reuse granularity L (§3.5 and the §5.3.1 finding that "a
 * larger L value typically leads to a greater speedup", because wider
 * slices mean fewer sub-matrices, fewer hash invocations and fewer
 * recovery passes — at some accuracy cost since wider vectors cluster
 * more coarsely). Sweeps L on a CifarNet-Conv2-shaped workload at
 * fixed H and reports the full tradeoff.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/latency_model.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Ablation: reuse granularity L (CifarNet Conv2 "
                "geometry, H=3) ===\n\n");
    CostModel model(McuSpec::stm32f469i());

    // Conv2-shaped workload on a redundant activation map.
    ConvGeometry geom;
    geom.batch = 1;
    geom.inChannels = 64;
    geom.inHeight = 16;
    geom.inWidth = 16;
    geom.outChannels = 64;
    geom.kernelH = 5;
    geom.kernelW = 5;
    geom.stride = 1;
    geom.pad = 2;

    Rng rng(88);
    Tensor protos = Tensor::randomNormal({5, 64}, rng);
    Tensor input({1, 64, 16, 16});
    Rng pick(89);
    for (size_t by = 0; by < 4; ++by)
        for (size_t bx = 0; bx < 4; ++bx) {
            size_t p = pick.uniformInt(5);
            for (size_t y = 0; y < 4; ++y)
                for (size_t x = 0; x < 4; ++x)
                    for (size_t c = 0; c < 64; ++c)
                        input.at4(0, c, 4 * by + y, 4 * bx + x) =
                            protos.at2(p, c) +
                            static_cast<float>(pick.normal(0, 0.01));
        }
    Tensor fit_x = im2col(input, geom);
    Tensor w = Tensor::randomNormal({geom.cols(), 64}, rng, 0.0f, 0.05f);
    Tensor exact = matmul(fit_x, w);

    BenchJson bj("ablation_granularity");
    TextTable t;
    t.setHeader({"L", "slices K", "r_t", "rel. error", "latency(ms)",
                 "speedup vs exact"});
    const double exact_ms = exactConvLedger(geom).totalMs(model);
    for (size_t l : {25, 50, 100, 200, 400, 800, 1600}) {
        ReusePattern p;
        p.granularity = l;
        p.numHashes = 3;
        ReuseConvAlgo algo(p, HashMode::Learned, 7);
        algo.fit(fit_x, geom);
        CostLedger ledger;
        OpCounts im2col_ops;
        im2col_ops.elemMoves = fit_x.size();
        ledger.add(Stage::Transformation, im2col_ops);
        Tensor approx = algo.multiply(fit_x, w, geom, &ledger);
        double ms = ledger.totalMs(model);
        t.addRow({std::to_string(l),
                  std::to_string((geom.cols() + l - 1) / l),
                  formatDouble(algo.lastStats().redundancyRatio(), 3),
                  formatDouble(relativeError(exact, approx), 4),
                  formatDouble(ms, 2), formatSpeedup(exact_ms / ms)});
        const std::string key = "L" + std::to_string(l);
        bj.record(key + "/relError", relativeError(exact, approx));
        bj.record(key + "/speedupVsExact", exact_ms / ms);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected shape (§5.3.1): speedup grows with L (fewer "
                "slices to hash and recover) while the error grows "
                "slowly until vectors get too coarse.\n");
    return 0;
}
