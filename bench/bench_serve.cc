/**
 * @file
 * Serve-engine bench: latency percentiles and throughput-vs-workers
 * for the concurrent multi-stream runtime (src/serve). Unlike the
 * paper benches this does not regenerate a figure — it characterizes
 * the PR 7 runtime: N guarded CifarNet replicas behind the bounded
 * request queue, each stream on its own worker/arena/drift state.
 *
 * Two measurements, two loops:
 *   - closed loop (saturation): keep 2×workers requests in flight and
 *     report completed/s for workers ∈ {1, 2, 4}. The w4/w1 ratio is
 *     the scaling number — on a single-core container it is honestly
 *     ≈1× (the workers time-slice one CPU); see EXPERIMENTS.md.
 *   - open loop (latency): offer requests at ~70% of the 1-worker
 *     saturation rate on a fixed schedule and report p50/p95/p99
 *     measured from the *scheduled* arrival (coordinated omission).
 *
 * Streams must be bit-identical, so every replica is the same-seed
 * CifarNet with the trained weights copied in and the same-seed
 * guarded reuse pattern fitted per replica.
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/args.h"
#include "common/faultpoint.h"
#include "common/logging.h"
#include "common/overload.h"
#include "common/thread_pool.h"
#include "core/canary.h"
#include "core/measurement.h"
#include "core/reuse_audit.h"
#include "serve/loadgen.h"
#include "serve/serve.h"
#include "serve/slo.h"

using namespace genreuse;
using namespace genreuse::bench;
using namespace genreuse::serve;

namespace {

/** One guarded CifarNet replica serving a stream. The engine calls
 *  infer() from exactly one worker with the stream context bound, so
 *  the stateful Network forward needs no locking. */
class NetworkStream : public InferenceStream
{
  public:
    NetworkStream(Network net,
                  std::vector<std::shared_ptr<GuardedReuseConvAlgo>> guards)
        : net_(std::move(net)), guards_(std::move(guards))
    {
    }

    Tensor
    infer(const Tensor &input, StreamContext &) override
    {
        return net_.forward(input, /*training=*/false);
    }

    /** Worst rung any guarded layer hit on the last forward. */
    GuardRung
    lastRung() const override
    {
        GuardRung worst = GuardRung::FullReuse;
        for (const auto &g : guards_)
            worst = std::max(worst, g->lastRung());
        return worst;
    }

  private:
    Network net_;
    std::vector<std::shared_ptr<GuardedReuseConvAlgo>> guards_;
};

/** Same-seed replica of the trained workbench net with the guarded
 *  reuse pattern fitted. Identical seeds everywhere → every stream is
 *  bit-identical to the single-stream pipeline. */
std::shared_ptr<NetworkStream>
makeReplica(Workbench &wb, uint64_t model_seed)
{
    Rng rng(model_seed);
    Network net = makeCifarNet(rng);

    // Copy the trained weights; params() enumerates in layer order, so
    // same-architecture nets align index-for-index.
    std::vector<Param *> src = wb.net.params();
    std::vector<Param *> dst = net.params();
    GENREUSE_REQUIRE(src.size() == dst.size(),
                     "replica parameter count mismatch");
    for (size_t i = 0; i < src.size(); ++i)
        dst[i]->value = src[i]->value;

    Dataset fit = wb.train.slice(0, std::min<size_t>(4, wb.train.size()));
    std::vector<std::shared_ptr<GuardedReuseConvAlgo>> guards;
    for (Conv2D *layer : reuseTargets(net, ModelKind::CifarNet)) {
        ReusePattern p;
        p.granularity = layer->kernelSize() * layer->kernelSize();
        p.numHashes = 4;
        guards.push_back(fitAndInstallGuarded(net, *layer, p, fit, {},
                                              HashMode::Learned, 99));
    }
    return std::make_shared<NetworkStream>(std::move(net),
                                           std::move(guards));
}

/** Delegating wrapper so several sequential engines can reuse one
 *  prebuilt replica pool (engines own their streams by unique_ptr). */
class SharedStream : public InferenceStream
{
  public:
    explicit SharedStream(std::shared_ptr<NetworkStream> impl)
        : impl_(std::move(impl))
    {
    }

    Tensor
    infer(const Tensor &input, StreamContext &ctx) override
    {
        return impl_->infer(input, ctx);
    }

    GuardRung
    lastRung() const override
    {
        return impl_->lastRung();
    }

  private:
    std::shared_ptr<NetworkStream> impl_;
};

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    std::printf(
        "=== bench_serve: multi-stream serve engine (PR 7/8) ===\n");

    const bool smoke = smokeMode();
    const size_t kMaxWorkers = 4;
    const size_t requests = smoke ? 16 : 160;

    Workbench wb = makeWorkbench(ModelKind::CifarNet);

    // Replicas are built once and shared across the sequential engine
    // runs below — within one engine each stream still runs on exactly
    // one worker, so the stateful forward stays single-threaded.
    std::vector<std::shared_ptr<NetworkStream>> replicas;
    for (size_t i = 0; i < kMaxWorkers; ++i)
        replicas.push_back(makeReplica(wb, /*model_seed=*/1000));

    StreamFactory factory = [&replicas](uint32_t stream_id) {
        return std::make_unique<SharedStream>(
            replicas.at(stream_id - 1));
    };

    // Pre-gathered batch-1 inputs; make_input runs on the generator
    // thread, off the measured path.
    const size_t pool_size = std::min<size_t>(wb.test.size(), 24);
    std::vector<Tensor> inputs;
    for (size_t i = 0; i < pool_size; ++i)
        inputs.push_back(wb.test.gatherImages({i}));
    auto make_input = [&inputs](size_t i) {
        return inputs[i % inputs.size()];
    };

    BenchJson json("serve");
    json.meta("model", "CifarNet");
    json.meta("smoke", smoke ? 1.0 : 0.0);
    json.meta("hw_threads",
              static_cast<double>(ThreadPool::hardwareThreads()));
    json.meta("requests", static_cast<double>(requests));

    TextTable thr_table;
    thr_table.setHeader({"workers", "throughput rps", "scaling vs w1"});
    double thr_w1 = 0.0;
    for (size_t workers : {size_t(1), size_t(2), size_t(4)}) {
        ServeConfig cfg;
        cfg.workers = workers;
        cfg.queueCapacity = 64;
        cfg.policy = AdmitPolicy::Block;
        cfg.name = "bserve";
        ServeEngine engine(cfg, factory);
        const double rps =
            runClosedLoop(engine, requests, /*inflight=*/2 * workers,
                          make_input);
        engine.shutdown();
        if (workers == 1)
            thr_w1 = rps;
        const double scaling = thr_w1 > 0.0 ? rps / thr_w1 : 0.0;
        json.record("throughput_w" + std::to_string(workers), rps);
        json.record("scaling_w" + std::to_string(workers), scaling);
        thr_table.addRow({std::to_string(workers), formatDouble(rps, 1),
                          formatSpeedup(scaling)});
    }
    std::printf("--- Closed-loop saturation throughput ---\n%s\n",
                thr_table.render().c_str());

    // Open-loop latency at ~70% of single-worker saturation: below the
    // knee so percentiles measure service + moderate queueing, not an
    // unbounded backlog.
    LoadGenConfig lg;
    lg.rps = std::max(1.0, 0.7 * thr_w1);
    lg.requests = requests;
    lg.seed = 7;
    lg.poisson = true;
    ServeConfig cfg;
    cfg.workers = 2;
    cfg.queueCapacity = 64;
    cfg.policy = AdmitPolicy::Block;
    cfg.name = "bserve";
    ServeEngine engine(cfg, factory);
    LatencyReport rep = runOpenLoop(engine, lg, make_input);
    engine.shutdown();

    TextTable lat_table;
    lat_table.setHeader({"metric", "value"});
    lat_table.addRow({"offered rps", formatDouble(lg.rps, 1)});
    lat_table.addRow({"completed", std::to_string(rep.completed)});
    lat_table.addRow({"p50 ms", formatDouble(rep.p50Ms, 2)});
    lat_table.addRow({"p95 ms", formatDouble(rep.p95Ms, 2)});
    lat_table.addRow({"p99 ms", formatDouble(rep.p99Ms, 2)});
    lat_table.addRow({"max ms", formatDouble(rep.maxMs, 2)});
    lat_table.addRow(
        {"throughput rps", formatDouble(rep.throughputRps, 1)});
    std::printf(
        "--- Open-loop latency (2 workers, Poisson arrivals) ---\n%s\n",
        lat_table.render().c_str());

    json.record("open_loop_rps", lg.rps);
    json.record("completed", static_cast<double>(rep.completed));
    json.record("rejected", static_cast<double>(rep.rejected));
    json.record("p50_ms", rep.p50Ms);
    json.record("p95_ms", rep.p95Ms);
    json.record("p99_ms", rep.p99Ms);
    json.record("p999_ms", rep.p999Ms);
    json.record("mean_ms", rep.meanMs);
    // Where the latency went: queue wait vs. service, from the
    // engine's per-request timestamps.
    json.record("queue_wait_mean_ms", rep.queueWaitMeanMs);
    json.record("queue_wait_p95_ms", rep.queueWaitP95Ms);
    json.record("service_mean_ms", rep.serviceMeanMs);
    json.record("service_p95_ms", rep.serviceP95Ms);
    json.record("throughput_rps", rep.throughputRps);

    // --- Degraded-mode latency (PR 8) -----------------------------------
    // Same open-loop offer with the overload ladder pinned at its top
    // level (verification shed entirely): the p99 gap vs the run above
    // is what load shedding actually buys when the controller trips.
    {
        overload::setLevel(overload::kMaxLevel);
        ServeConfig dcfg;
        dcfg.workers = 2;
        dcfg.queueCapacity = 64;
        dcfg.policy = AdmitPolicy::Block;
        dcfg.name = "bserve";
        ServeEngine deg(dcfg, factory);
        LatencyReport drep = runOpenLoop(deg, lg, make_input);
        deg.shutdown();
        overload::setLevel(0);
        std::printf("--- Degraded mode (overload level %d, unverified "
                    "forwards) ---\n"
                    "p99 %.2f ms vs %.2f ms healthy (p50 %.2f vs %.2f)\n\n",
                    overload::kMaxLevel, drep.p99Ms, rep.p99Ms, drep.p50Ms,
                    rep.p50Ms);
        json.record("degraded_p99_ms", drep.p99Ms);
        json.record("degraded_p50_ms", drep.p50Ms);
    }

    // --- Chaos section (PR 8) -------------------------------------------
    // Deterministic by construction, so the counters are BENCH-gateable:
    //   - a persistent worker_panic on the single stream makes every
    //     request a contained panic; with the default 3-strike policy,
    //     12 requests are exactly 4 quarantine/respawn cycles;
    //   - 8 requests with a 1 ns deadline queued behind a slow clean
    //     request all expire in the queue → exactly 8 sheds.
    {
        const size_t panic_requests = 12;
        ServeConfig ccfg;
        ccfg.workers = 1;
        ccfg.queueCapacity = 16;
        ccfg.policy = AdmitPolicy::Block;
        ccfg.name = "chaos";
        ServeEngine eng(ccfg, factory);
        GENREUSE_REQUIRE(faultpoint::armSpec("worker_panic@1").ok(),
                         "chaos: arming worker_panic failed");
        size_t failed_requests = 0;
        for (size_t i = 0; i < panic_requests; ++i) {
            auto fut = eng.submit(make_input(i));
            GENREUSE_REQUIRE(fut.has_value(), "chaos: submit failed");
            ServeResult r = fut->get();
            if (!r.status.ok())
                ++failed_requests;
        }
        faultpoint::disarm();

        // Survival proof: the respawned stream serves a clean request.
        auto fut = eng.submit(make_input(0));
        GENREUSE_REQUIRE(fut.has_value(), "chaos: post-storm submit failed");
        GENREUSE_REQUIRE(fut->get().status.ok(),
                         "chaos: respawned stream still failing");

        // Shed: one clean request occupies the worker while 8 requests
        // with an already-expired deadline pile up behind it.
        const size_t shed_requests = 8;
        std::vector<std::future<ServeResult>> pending;
        auto busy = eng.submit(make_input(0));
        GENREUSE_REQUIRE(busy.has_value(), "chaos: busy submit failed");
        for (size_t i = 0; i < shed_requests; ++i) {
            auto f = eng.submit(make_input(i), /*deadline_ns=*/1);
            GENREUSE_REQUIRE(f.has_value(), "chaos: shed submit failed");
            pending.push_back(std::move(*f));
        }
        (void)busy->get();
        size_t shed_seen = 0;
        for (auto &f : pending)
            if (f.get().status.code() == ErrorCode::DeadlineExceeded)
                ++shed_seen;
        eng.shutdown();

        ServeStats st = eng.stats();
        std::printf("--- Chaos (worker_panic storm + expired deadlines, "
                    "1 worker) ---\n"
                    "requests failed-with-Status %zu/%zu, contained "
                    "panics %llu, quarantines %llu, respawns %llu, "
                    "shed %llu (process survived)\n\n",
                    failed_requests, panic_requests,
                    static_cast<unsigned long long>(st.containedPanics),
                    static_cast<unsigned long long>(st.quarantines),
                    static_cast<unsigned long long>(st.respawns),
                    static_cast<unsigned long long>(st.shed));
        json.record("chaos_contained_panics",
                    static_cast<double>(st.containedPanics));
        json.record("chaos_quarantined",
                    static_cast<double>(st.quarantines));
        json.record("chaos_respawned", static_cast<double>(st.respawns));
        json.record("chaos_shed", static_cast<double>(shed_seen));
    }

    // --- Observed serving (PR 10) ---------------------------------------
    // One more closed loop with the reuse-efficacy audit armed, the
    // canary at rate 1.0 and an SLO monitor attached. The keys are
    // deterministic: replicas are bit-identical, so each forward's
    // redundancy ratio depends only on its input — the multiset of
    // observed r_t values (and hence their mean) is scheduling-free,
    // and a generous latency objective plus in-distribution inputs
    // mean zero breaches and zero alerts by construction.
    {
        audit::reset();
        canary::reset();
        audit::setEnabled(true);
        canary::setRate(1.0);

        ServeConfig ocfg;
        ocfg.workers = 2;
        ocfg.queueCapacity = 64;
        ocfg.policy = AdmitPolicy::Block;
        ocfg.name = "observed";
        ServeEngine eng(ocfg, factory);
        SloMonitor slo(eng, defaultSloSpecs(/*p99_ms=*/1e6));
        slo.tick();
        runClosedLoop(eng, requests, /*inflight=*/4, make_input);
        slo.tick();
        eng.shutdown();

        uint64_t fwd = 0, breaches_total = 0;
        double rt_sum = 0.0, gap_max = 0.0;
        audit::Snapshot snap = audit::snapshot();
        for (const auto &l : snap.layers) {
            fwd += l.forwards;
            rt_sum += l.sumObserved;
            gap_max = std::max(gap_max, l.modelGap());
        }
        const double rt_mean =
            fwd ? rt_sum / static_cast<double>(fwd) : 0.0;
        uint64_t alerts = 0;
        for (const SloState &s : slo.states())
            alerts += s.transitions;

        std::printf("--- Observed serving (audit + canary 1.0 + SLO "
                    "monitor) ---\n"
                    "guarded forwards %llu, observed r_t mean %.4f, "
                    "model gap max %.4f, canary %llu samples / %llu "
                    "breaches, slo alerts %llu\n\n",
                    static_cast<unsigned long long>(fwd), rt_mean,
                    gap_max,
                    static_cast<unsigned long long>(
                        canary::totalSamples()),
                    static_cast<unsigned long long>(
                        canary::totalBreaches()),
                    static_cast<unsigned long long>(alerts));
        json.record("audit_forwards", static_cast<double>(fwd));
        json.record("audit_observed_rt_mean", rt_mean);
        json.record("audit_model_gap_max", gap_max);
        json.record("canary_samples",
                    static_cast<double>(canary::totalSamples()));
        json.record("canary_breaches",
                    static_cast<double>(canary::totalBreaches()));
        json.record("slo_alerts_fired", static_cast<double>(alerts));
        breaches_total = canary::totalBreaches();
        GENREUSE_REQUIRE(breaches_total == 0,
                         "observed serving: unexpected canary breach "
                         "on in-distribution inputs");

        canary::setRate(0.0);
        canary::reset();
        audit::setEnabled(false);
        audit::reset();
    }

    // --chaos: heavier multi-event storm across 4 streams. Counters are
    // timing-dependent (which stream serves which closed-loop request),
    // so this prints rather than records.
    if (args.has("chaos")) {
        ServeConfig scfg;
        scfg.workers = kMaxWorkers;
        scfg.queueCapacity = 64;
        scfg.policy = AdmitPolicy::Block;
        scfg.name = "storm";
        ServeEngine eng(scfg, factory);
        GENREUSE_REQUIRE(
            faultpoint::armSpec("nan_activation@2,worker_panic@3").ok(),
            "chaos storm: armSpec failed");
        const double rps = runClosedLoop(eng, 4 * requests,
                                         /*inflight=*/2 * kMaxWorkers,
                                         make_input);
        faultpoint::disarm();
        eng.shutdown();
        ServeStats st = eng.stats();
        std::printf("--- Chaos storm (--chaos: nan_activation@2 + "
                    "worker_panic@3, %zu workers) ---\n"
                    "%.1f rps, health %s, failed %llu, contained %llu, "
                    "quarantines %llu, respawns %llu\n\n",
                    kMaxWorkers, rps, healthName(st.health),
                    static_cast<unsigned long long>(st.failed),
                    static_cast<unsigned long long>(st.containedPanics),
                    static_cast<unsigned long long>(st.quarantines),
                    static_cast<unsigned long long>(st.respawns));
    }
    return 0;
}
