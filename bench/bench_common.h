/**
 * @file
 * Shared infrastructure for the paper-reproduction benches: trained-
 * network fixtures on the synthetic datasets, pattern application,
 * end-to-end measurement series, and paper-style reporting.
 *
 * Every bench binary regenerates one table or figure of the paper's
 * evaluation (§5); see DESIGN.md's experiment index. Scales (training
 * set sizes, epochs) are reduced to CPU-friendly values — EXPERIMENTS.md
 * records how the measured shapes compare with the paper's.
 */

#ifndef GENREUSE_BENCH_BENCH_COMMON_H
#define GENREUSE_BENCH_BENCH_COMMON_H

#include <string>
#include <vector>

#include "common/json.h"
#include "common/table.h"
#include "core/measurement.h"
#include "core/pattern_space.h"
#include "core/selection.h"
#include "data/synthetic.h"
#include "models/models.h"
#include "nn/trainer.h"

namespace genreuse::bench {

/**
 * True when the GENREUSE_BENCH_SMOKE environment variable is set (and
 * not "0"): benches shrink training/eval sizes so the whole suite runs
 * in CI seconds while still exercising every code path and emitting
 * the same JSON records (tagged "smoke": true).
 */
bool smokeMode();

/**
 * True when GENREUSE_GUARD is set (and not "0"): the measurement
 * helpers install reuse algorithms wrapped in the runtime guard
 * (core/guard.h), so bench latencies include the guard's verification
 * cost and guard-event counters land in the bench JSON (the
 * "guardEvents" extra, schema genreuse.guard/1).
 */
bool guardMode();

/** @return @p full, reduced to a small count in smoke mode. */
size_t evalImages(size_t full);

struct SeriesPoint;

/**
 * Schema-versioned machine-readable bench record
 * (schema "genreuse.bench/1"). Every bench binary creates one, fills
 * metadata/results/series while printing its human tables as before,
 * and the destructor writes BENCH_<name>.json into
 * $GENREUSE_BENCH_JSON_DIR (default: the working directory). Key order
 * is insertion order and doubles print with stable precision, so
 * records from two runs can be diffed textually.
 */
class BenchJson
{
  public:
    explicit BenchJson(std::string bench_name);
    ~BenchJson(); //!< writes the record (unless write() already ran)

    BenchJson(const BenchJson &) = delete;
    BenchJson &operator=(const BenchJson &) = delete;

    /** Free-form metadata (model name, board, H sweep, ...). */
    void meta(const std::string &key, const std::string &value);
    void meta(const std::string &key, double value);

    /** A scalar result (speedup, accuracy drop, ...). */
    void record(const std::string &key, double value);

    /** A measured accuracy/latency series (figure data). */
    void addSeries(const std::string &name,
                   const std::vector<SeriesPoint> &series);

    /** Splice an arbitrary pre-serialized JSON value under @p key in
     *  the "extra" section (stage breakdowns, trace snapshots, ...). */
    void extra(const std::string &key, const std::string &raw_json);

    /** Destination path (dir from $GENREUSE_BENCH_JSON_DIR). */
    const std::string &path() const { return path_; }

    /** Serialize + write now; later calls to write() are no-ops. */
    void write();

    /** One scalar meta/result entry (string- or double-valued). */
    struct Scalar
    {
        std::string key;
        bool isString = false;
        std::string s;
        double d = 0.0;
    };

  private:
    std::string name_;
    std::string path_;
    std::vector<Scalar> meta_;
    std::vector<Scalar> results_;
    std::vector<std::pair<std::string, std::vector<SeriesPoint>>> series_;
    std::vector<std::pair<std::string, std::string>> extra_;
    bool written_ = false;
};

/** A trained network plus its data splits. */
struct Workbench
{
    Network net;
    Dataset train;
    Dataset test;
    double baselineAccuracy = 0.0; //!< exact-inference test accuracy

    explicit Workbench(Network n) : net(std::move(n)) {}
};

/** Which model to build. */
enum class ModelKind
{
    CifarNet,
    ZfNet,
    SqueezeNet,
    SqueezeNetBypass,
    ResNet18,
};

const char *modelName(ModelKind kind);

/**
 * Build, train and evaluate a model on the synthetic dataset sized for
 * bench budgets. Deterministic for a given seed.
 *
 * @param train_samples training set size (0 = model-specific default)
 * @param epochs training epochs (0 = model-specific default)
 */
Workbench makeWorkbench(ModelKind kind, uint64_t seed = 1000,
                        size_t train_samples = 0, size_t test_samples = 96,
                        size_t epochs = 0);

/** One measured configuration for a figure series. */
struct SeriesPoint
{
    std::string label;
    double accuracy = 0.0;
    double latencyMs = 0.0;
    double redundancy = 0.0;
};

/**
 * The convolution layers a model's reuse optimization targets
 * (paper: all convs for CifarNet/ZfNet, the Fire expand_3x3 convs for
 * SqueezeNet, the block convs for ResNet-18).
 */
std::vector<Conv2D *> reuseTargets(Network &net, ModelKind kind);

/**
 * Install @p pattern on every target layer (fitting hash families from
 * training data) and measure end-to-end accuracy + latency. The
 * network's algorithms are restored to exact afterwards.
 */
SeriesPoint measurePatternEverywhere(Workbench &wb, ModelKind kind,
                                     const ReusePattern &base_pattern,
                                     const CostModel &model,
                                     size_t eval_images,
                                     HashMode mode = HashMode::Learned);

/**
 * The SOTA (conventional deep reuse / TREC) accuracy-latency spectrum:
 * the conventional pattern swept over H.
 */
std::vector<SeriesPoint> sotaSpectrum(Workbench &wb, ModelKind kind,
                                      const CostModel &model,
                                      size_t eval_images);

/**
 * The generalized-reuse spectrum: for each H, per-layer patterns are
 * chosen by the analytic models (Figure 8's workflow, pruned to one
 * winner per layer) from a generalized candidate scope.
 */
std::vector<SeriesPoint> generalizedSpectrum(Workbench &wb, ModelKind kind,
                                             const CostModel &model,
                                             size_t eval_images);

/** Print a series as an aligned table. */
void printSeries(const std::string &title,
                 const std::vector<SeriesPoint> &series);

/**
 * The paper's two headline comparisons between spectra: best speedup
 * at matched accuracy (within @p accuracy_slack) and best accuracy
 * gain at matched latency (within @p latency_slack_ratio).
 */
struct SpectrumComparison
{
    double speedupAtMatchedAccuracy = 1.0;
    double accuracyGainAtMatchedLatency = 0.0;
};

SpectrumComparison compareSpectra(const std::vector<SeriesPoint> &sota,
                                  const std::vector<SeriesPoint> &ours,
                                  double accuracy_slack = 0.02,
                                  double latency_slack_ratio = 1.10);

/** Per-layer pattern choice used by generalizedSpectrum (exposed for
 *  the single-layer benches). */
ReusePattern pickPatternAnalytically(Network &net, Conv2D &layer,
                                     const Dataset &train, size_t num_hashes,
                                     const CostModel &model);

/** One single-layer measurement (Table 1 rows). */
struct SingleLayerResult
{
    ReusePattern pattern;
    double redundancy = 0.0;   //!< r_t on this layer
    double accuracy = 0.0;     //!< end-to-end accuracy with this layer
                               //!< reuse-optimized (others exact)
    double layerReuseMs = 0.0; //!< per-image latency of this layer
    double layerExactMs = 0.0; //!< per-image exact (CMSIS-NN) latency

    /** Speedup vs the exact convolution ("vs CMSIS-NN"). */
    double
    speedupVsExact() const
    {
        return layerReuseMs > 0.0 ? layerExactMs / layerReuseMs : 1.0;
    }
};

/**
 * Install @p pattern on @p layer only, evaluate end-to-end accuracy
 * and measure this layer's per-image latency. Exact algos restored.
 */
SingleLayerResult measureSingleLayer(Workbench &wb, Conv2D &layer,
                                     const ReusePattern &pattern,
                                     const CostModel &model,
                                     size_t eval_images,
                                     HashMode mode = HashMode::Learned);

} // namespace genreuse::bench

#endif // GENREUSE_BENCH_BENCH_COMMON_H
