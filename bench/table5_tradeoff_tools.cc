/**
 * @file
 * Table 5 reproduction (§5.3.9): reuse composed with other model-
 * optimization tools — CP (channel pruning, realized as a structurally
 * narrower CifarNet), Q (fixed-point 8-bit quantization of the
 * weights), and HPO (a small grid search over learning rate and
 * momentum). Rows: CP+Q+HPO versus CP+Q+HPO+reuse, reporting accuracy,
 * F4 latency and convolution FLOPs, as in the paper (0.78/217ms/15M vs
 * 0.76/187ms/6M — reuse trades a sliver of accuracy for latency and a
 * large FLOP cut, on top of the other tools).
 */

#include <cstdio>

#include "bench_common.h"
#include "quant/fixed_point.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Table 5: reuse composed with channel pruning + "
                "quantization + HPO (CifarNet, F4) ===\n\n");
    CostModel model(McuSpec::stm32f469i());
    BenchJson bj("table5_tradeoff_tools");
    bj.meta("board", model.spec().name);

    // Data shared across HPO trials.
    SyntheticConfig dcfg;
    dcfg.numSamples = smokeMode() ? 48 : 160;
    dcfg.seed = 901;
    Dataset train_data = makeSyntheticCifar(dcfg);
    dcfg.numSamples = smokeMode() ? 24 : 64;
    dcfg.seed = 902;
    Dataset test_data = makeSyntheticCifar(dcfg);

    // --- CP: structurally pruned CifarNet (width 64 -> 40) ----------
    // --- HPO: grid over (lr, momentum), best train accuracy wins ----
    const double lrs[] = {0.02, 0.005};
    const double moms[] = {0.9, 0.8};
    double best_acc = -1.0;
    std::unique_ptr<Network> best_net;
    for (double lr : lrs) {
        for (double mom : moms) {
            Rng rng(900);
            auto net = std::make_unique<Network>(makeCifarNet(rng, 10, 40));
            TrainConfig tcfg;
            tcfg.epochs = smokeMode() ? 1 : 3;
            tcfg.batchSize = 16;
            tcfg.sgd.learningRate = lr;
            tcfg.sgd.momentum = mom;
            TrainReport rep = train(*net, train_data, tcfg);
            if (rep.finalTrainAccuracy > best_acc) {
                best_acc = rep.finalTrainAccuracy;
                best_net = std::move(net);
            }
        }
    }
    Network &net = *best_net;

    // --- Q: fixed-point 8-bit weights ---------------------------------
    for (auto *conv : net.convLayers()) {
        conv->kernel().value = fakeQuantizeFixedPoint(conv->kernel().value);
        conv->bias().value = fakeQuantizeFixedPoint(conv->bias().value);
    }

    Workbench wb(std::move(net));
    wb.train = std::move(train_data);
    wb.test = std::move(test_data);

    // --- CP + Q + HPO (no reuse) ---------------------------------------
    Measurement plain =
        measureNetwork(wb.net, wb.test, model, evalImages(48));
    uint64_t plain_macs =
        plain.perImageConvLedger.stage(Stage::Gemm).macs +
        plain.perImageConvLedger.stage(Stage::Clustering).macs;

    // --- + reuse ---------------------------------------------------------
    Dataset fit = wb.train.slice(0, 4);
    for (Conv2D *layer : wb.net.convLayers()) {
        ReusePattern p =
            pickPatternAnalytically(wb.net, *layer, wb.train, 3, model);
        fitAndInstall(wb.net, *layer, p, fit);
    }
    Measurement with_reuse =
        measureNetwork(wb.net, wb.test, model, evalImages(48));
    // MACs include the LSH hashing (it is multiply-accumulate work).
    uint64_t reuse_macs =
        with_reuse.perImageConvLedger.stage(Stage::Gemm).macs +
        with_reuse.perImageConvLedger.stage(Stage::Clustering).macs;
    resetAllConvs(wb.net);

    TextTable t;
    t.setHeader({"Technique", "Accuracy", "Latency (ms)", "conv MACs"});
    t.addRow({"CP + Q + HPO", formatDouble(plain.accuracy, 3),
              formatDouble(plain.perImageMs, 1),
              formatDouble(plain_macs / 1e6, 1) + "M"});
    t.addRow({"CP + Q + HPO + reuse", formatDouble(with_reuse.accuracy, 3),
              formatDouble(with_reuse.perImageMs, 1),
              formatDouble(reuse_macs / 1e6, 1) + "M"});
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected shape (paper): reuse adds a further latency and "
                "FLOP reduction at a small accuracy cost.\n");
    bj.record("plain/accuracy", plain.accuracy);
    bj.record("plain/latencyMs", plain.perImageMs);
    bj.record("plain/convMacsM", plain_macs / 1e6);
    bj.record("reuse/accuracy", with_reuse.accuracy);
    bj.record("reuse/latencyMs", with_reuse.perImageMs);
    bj.record("reuse/convMacsM", reuse_macs / 1e6);
    return 0;
}
