/**
 * @file
 * Figure 13 reproduction: five distinct reuse patterns on CifarNet
 * Conv1, showing how the pattern choice moves a layer around the
 * accuracy-latency plane and which choices are Pareto-optimal.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/pareto.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Figure 13: five reuse patterns on CifarNet Conv1 "
                "===\n\n");
    CostModel model(McuSpec::stm32f469i());
    BenchJson bj("fig13_pattern_pareto");
    bj.meta("board", model.spec().name);
    Workbench wb = makeWorkbench(ModelKind::CifarNet);
    Conv2D *layer = wb.net.findConv("conv1");
    std::printf("baseline exact accuracy: %.4f\n\n", wb.baselineAccuracy);
    bj.record("baselineAccuracy", wb.baselineAccuracy);

    // Five hand-picked, structurally different patterns.
    std::vector<ReusePattern> patterns(5);
    patterns[0].granularity = 25; // conventional: tile-in-channel, M-1
    patterns[0].numHashes = 4;
    patterns[1].columnOrder = ColumnOrder::PixelMajor; // channel-first
    patterns[1].granularity = 15;
    patterns[1].numHashes = 4;
    patterns[2].granularity = 75; // whole-row vectors, few hashes
    patterns[2].numHashes = 2;
    patterns[3].direction = ReuseDirection::Horizontal; // new direction
    patterns[3].granularity = 0;
    patterns[3].numHashes = 4;
    patterns[4].granularity = 75; // 2-D neuron blocks
    patterns[4].blockRows = 2;
    patterns[4].numHashes = 3;

    TextTable t;
    t.setHeader({"pattern", "accuracy", "layer ms", "r_t", "Pareto"});
    std::vector<ParetoPoint> points;
    std::vector<SingleLayerResult> results;
    for (size_t i = 0; i < patterns.size(); ++i) {
        SingleLayerResult r = measureSingleLayer(wb, *layer, patterns[i],
                                                 model, evalImages(48));
        points.push_back({r.layerReuseMs, r.accuracy, i});
        results.push_back(r);
    }
    auto front = paretoFront(points);
    std::vector<SeriesPoint> series;
    for (size_t i = 0; i < patterns.size(); ++i) {
        bool on_front =
            std::find(front.begin(), front.end(), i) != front.end();
        t.addRow({patterns[i].describe(),
                  formatDouble(results[i].accuracy, 4),
                  formatDouble(results[i].layerReuseMs, 2),
                  formatDouble(results[i].redundancy, 3),
                  on_front ? "*" : ""});
        SeriesPoint pt;
        pt.label = patterns[i].describe() + (on_front ? " *" : "");
        pt.accuracy = results[i].accuracy;
        pt.latencyMs = results[i].layerReuseMs;
        pt.redundancy = results[i].redundancy;
        series.push_back(pt);
    }
    bj.addSeries("conv1/patterns", series);
    std::printf("%s\n", t.render().c_str());
    std::printf("Patterns marked * are Pareto-optimal; users pick from "
                "them per their accuracy/latency needs (§5.3.2).\n");
    return 0;
}
