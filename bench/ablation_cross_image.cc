/**
 * @file
 * Ablation of cross-image reuse — Figure 4's pattern-3, realized by the
 * Fig 6(e) row reorder: the PixelMajor row order interleaves a batch so
 * consecutive im2col rows hold the same output pixel of different
 * images, and a 2-row neuron block then spans two images.
 *
 * On a video-like stream (consecutive frames nearly identical), a
 * cross-image block's two halves are near-duplicates *by construction*,
 * so clustering 2-row blocks behaves like clustering single rows of one
 * frame — at half the clustering invocations. Same-image blocks (the
 * default row order) only enjoy this when the content happens to be
 * spatially smooth. Note also that for 1-row units the row order is
 * immaterial (clustering is invariant to row permutations); pattern-3
 * is inherently a *block*-level pattern.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/latency_model.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Ablation: cross-image reuse (pattern-3 via row "
                "reorder + 2-row blocks) ===\n\n");

    ConvGeometry geom;
    geom.batch = 2;
    geom.inChannels = 3;
    geom.inHeight = 32;
    geom.inWidth = 32;
    geom.outChannels = 32;
    geom.kernelH = 5;
    geom.kernelW = 5;
    geom.stride = 1;
    geom.pad = 2;

    // Two "video frames": frame 2 = frame 1 + small sensor noise.
    SyntheticConfig cfg;
    cfg.numSamples = 1;
    cfg.noiseStddev = 0.0f;
    Dataset base = makeSyntheticCifar(cfg);
    Tensor frames({2, 3, 32, 32});
    Rng jitter(91);
    const size_t frame_elems = 3 * 32 * 32;
    for (size_t i = 0; i < frame_elems; ++i) {
        frames[i] = base.images[i];
        frames[frame_elems + i] =
            base.images[i] + static_cast<float>(jitter.normal(0, 0.01));
    }
    Tensor x = im2col(frames, geom);
    Rng rng(92);
    Tensor w = Tensor::randomNormal({geom.cols(), 32}, rng, 0.0f, 0.1f);
    Tensor exact = matmul(x, w);

    struct Config
    {
        const char *name;
        RowOrder order;
        size_t blockRows;
    };
    const Config configs[] = {
        {"1-row units (any order)", RowOrder::BatchMajor, 1},
        {"R1 blocks (same image)", RowOrder::BatchMajor, 2},
        {"R2 blocks (cross image)", RowOrder::PixelMajor, 2},
    };

    BenchJson bj("ablation_cross_image");
    TextTable t;
    t.setHeader({"config", "H", "r_t", "rel. error", "cluster invocations"});
    for (size_t h : {4, 6}) {
        for (const Config &c : configs) {
            ReusePattern p;
            p.rowOrder = c.order;
            p.granularity = 25;
            p.blockRows = c.blockRows;
            p.numHashes = h;
            ReuseConvAlgo algo(p, HashMode::Learned, 7);
            algo.fit(x, geom);
            CostLedger ledger;
            Tensor approx = algo.multiply(x, w, geom, &ledger);
            t.addRow({c.name, std::to_string(h),
                      formatDouble(algo.lastStats().redundancyRatio(), 3),
                      formatDouble(relativeError(exact, approx), 4),
                      std::to_string(
                          ledger.stage(Stage::Clustering).tableOps)});
            const std::string key =
                std::string(c.name) + "/H" + std::to_string(h);
            bj.record(key + "/relError", relativeError(exact, approx));
            bj.record(key + "/clusterInvocations",
                      static_cast<double>(
                          ledger.stage(Stage::Clustering).tableOps));
        }
        t.addSeparator();
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected shape: R2's cross-image blocks match the 1-row "
                "baseline's error with half the clustering invocations — "
                "the pattern-3 opportunity on temporally redundant "
                "streams. R1's same-image blocks reach similar numbers "
                "here only because the frames are also spatially smooth; "
                "R2's guarantee comes from temporal duplication alone.\n");
    return 0;
}
