/**
 * @file
 * Ablation of reuse on fully connected layers (§3.1's remark that FC
 * layers benefit less than convolutions). For a batch-1 FC layer the
 * per-sample weight-block reduction costs F x O adds — the same order
 * as the exact product — so even high redundancy struggles to pay off,
 * unlike the convolution case where the band amortizes it. This bench
 * quantifies the economics side by side.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/fc_reuse.h"
#include "core/latency_model.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Ablation: reuse on fully connected layers ===\n\n");
    CostModel model(McuSpec::stm32f469i());
    Rng rng(66);

    // A redundant FC input: repeated segments (e.g. flattened pooled
    // activations of a texture-heavy image).
    const size_t l = 32, segs = 32, f = l * segs, o = 192;
    Tensor seg_pool = Tensor::randomNormal({4, l}, rng);
    Tensor x({1, f});
    for (size_t s = 0; s < segs; ++s) {
        size_t pick = rng.uniformInt(4);
        for (size_t j = 0; j < l; ++j)
            x.at2(0, s * l + j) = seg_pool.at2(pick, j) +
                                  static_cast<float>(rng.normal(0, 0.01));
    }
    Tensor w = Tensor::randomNormal({f, o}, rng, 0.0f, 0.05f);
    Tensor exact = matmul(x, w);

    BenchJson bj("ablation_fc_reuse");
    TextTable t;
    t.setHeader({"H", "r_t", "rel. error", "reuse MACs", "exact MACs",
                 "FC latency ratio", "conv-equivalent ratio"});
    for (size_t h : {2, 4, 6}) {
        HashFamily fam = HashFamily::random(h, l, rng);
        CostLedger ledger;
        ReuseStats stats;
        Tensor y = fcReuseForward(x, w, Tensor({0}, std::vector<float>{}),
                                  l, fam, &ledger, &stats);

        CostLedger exact_ledger;
        OpCounts mm;
        mm.macs = f * o;
        exact_ledger.add(Stage::Gemm, mm);

        // The conv-equivalent ratio: same op mix but with the weight
        // reduction amortized over a 256-row band, as horizontal conv
        // reuse achieves.
        CostLedger conv_like;
        OpCounts cl = ledger.stage(Stage::Clustering);
        conv_like.add(Stage::Clustering, cl);
        conv_like.add(Stage::Gemm, ledger.stage(Stage::Gemm));
        OpCounts rc = ledger.stage(Stage::Recovering);
        rc.aluOps /= 256;
        conv_like.add(Stage::Recovering, rc);

        t.addRow({std::to_string(h),
                  formatDouble(stats.redundancyRatio(), 3),
                  formatDouble(relativeError(exact, y), 4),
                  std::to_string(stats.reuseMacs),
                  std::to_string(stats.exactMacs),
                  formatDouble(ledger.totalMs(model) /
                               exact_ledger.totalMs(model), 3),
                  formatDouble(conv_like.totalMs(model) /
                               exact_ledger.totalMs(model), 3)});
        const std::string key = "H" + std::to_string(h);
        bj.record(key + "/relError", relativeError(exact, y));
        bj.record(key + "/fcLatencyRatio",
                  ledger.totalMs(model) / exact_ledger.totalMs(model));
        bj.record(key + "/convEquivalentRatio",
                  conv_like.totalMs(model) / exact_ledger.totalMs(model));
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected shape: FC latency ratio stays near or above 1 "
                "even at high r_t (the F x O weight-reduction bill), "
                "while the conv-equivalent ratio is clearly below 1 — "
                "why the paper focuses reuse on convolutions.\n");
    return 0;
}
