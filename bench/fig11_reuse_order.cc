/**
 * @file
 * Figure 11 reproduction: the effect of the reuse *order* on CifarNet.
 * C1 = channel-last (Fig 6(b) default order: a neuron vector stays
 * within one channel), C2 = channel-first (Fig 6(d) moveaxis order: a
 * neuron vector spans all channels of one kernel position). The paper
 * finds C1 better on Conv1 (raw RGB channels carry distinct features)
 * and C2 better on Conv2 (post-conv activation channels are a joint
 * representation of a position).
 */

#include <cstdio>

#include "bench_common.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Figure 11: reuse order (C1 channel-last vs C2 "
                "channel-first), CifarNet ===\n\n");
    CostModel model(McuSpec::stm32f469i());
    BenchJson bj("fig11_reuse_order");
    bj.meta("board", model.spec().name);
    Workbench wb = makeWorkbench(ModelKind::CifarNet);
    std::printf("baseline exact accuracy: %.4f\n\n", wb.baselineAccuracy);
    bj.record("baselineAccuracy", wb.baselineAccuracy);

    for (const char *layer_name : {"conv1", "conv2"}) {
        Conv2D *layer = wb.net.findConv(layer_name);
        TextTable t;
        t.setHeader({"order", "L", "H", "accuracy", "layer ms", "r_t"});
        for (size_t h : {2, 4, 6}) {
            // C1: neuron vectors within one channel (granularity = one
            // kernel tile); C2: all channels of a few positions.
            ReusePattern c1;
            c1.columnOrder = ColumnOrder::ChannelMajor;
            c1.granularity = layer->kernelSize() * layer->kernelSize();
            c1.numHashes = h;

            ReusePattern c2;
            c2.columnOrder = ColumnOrder::PixelMajor;
            c2.granularity = layer->inChannels() *
                             std::max<size_t>(1,
                                              layer->kernelSize() *
                                                  layer->kernelSize() /
                                                  5);
            c2.numHashes = h;

            for (auto [label, p] :
                 {std::pair<const char *, ReusePattern>{"C1", c1},
                  std::pair<const char *, ReusePattern>{"C2", c2}}) {
                SingleLayerResult r =
                    measureSingleLayer(wb, *layer, p, model,
                                       evalImages(40));
                t.addRow({label, std::to_string(p.granularity),
                          std::to_string(h), formatDouble(r.accuracy, 4),
                          formatDouble(r.layerReuseMs, 2),
                          formatDouble(r.redundancy, 3)});
                const std::string key = std::string(layer_name) + "/" +
                                        label + "/H" + std::to_string(h);
                bj.record(key + "/accuracy", r.accuracy);
                bj.record(key + "/layerMs", r.layerReuseMs);
            }
        }
        std::printf("--- CifarNet %s ---\n%s\n", layer_name,
                    t.render().c_str());
    }
    std::printf("Paper's finding: C1 (channel-last) wins on Conv1, C2 "
                "(channel-first) wins on Conv2.\n");
    return 0;
}
