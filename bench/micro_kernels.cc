/**
 * @file
 * google-benchmark microbenchmarks of the hot kernels underneath the
 * paper reproduction: blocked GEMM, im2col, im2col reordering, LSH
 * signatures/clustering, and the vertical/horizontal reuse GEMMs
 * against the exact GEMM on redundant inputs. These are wall-clock
 * numbers of this host library (the MCU latencies in the table/figure
 * benches come from the cycle cost model instead).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>

#include "bench_common.h"
#include "common/eventlog.h"
#include "common/faultpoint.h"
#include "common/logging.h"
#include "common/profiler.h"
#include "common/rtrace.h"
#include "common/simd.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/canary.h"
#include "core/fc_reuse.h"
#include "core/guard.h"
#include "core/reuse_audit.h"
#include "core/horizontal_reuse.h"
#include "core/reorder.h"
#include "core/vertical_reuse.h"
#include "data/synthetic.h"
#include "lsh/clustering.h"
#include "quant/int8_quant.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"

using namespace genreuse;

namespace {

Tensor
redundantMatrix(size_t rows, size_t cols, size_t protos, uint64_t seed)
{
    Rng rng(seed);
    Tensor prototypes = Tensor::randomNormal({protos, cols}, rng);
    Tensor out({rows, cols});
    for (size_t r = 0; r < rows; ++r) {
        size_t p = rng.uniformInt(protos);
        std::copy(prototypes.data() + p * cols,
                  prototypes.data() + (p + 1) * cols,
                  out.data() + r * cols);
    }
    return out;
}

void
BM_GemmCifarNetConv2(benchmark::State &state)
{
    // The N x Din x Dout of CifarNet Conv2 (256 x 1600 x 64).
    Rng rng(1);
    Tensor a = Tensor::randomNormal({256, 1600}, rng);
    Tensor b = Tensor::randomNormal({1600, 64}, rng);
    Tensor c({256, 64});
    for (auto _ : state) {
        gemm(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 256 * 1600 * 64);
}
BENCHMARK(BM_GemmCifarNetConv2);

void
BM_Im2colCifar(benchmark::State &state)
{
    ConvGeometry geom;
    geom.inChannels = 3;
    geom.inHeight = 32;
    geom.inWidth = 32;
    geom.outChannels = 64;
    geom.kernelH = 5;
    geom.kernelW = 5;
    geom.pad = 2;
    Rng rng(2);
    Tensor x = Tensor::randomNormal({1, 3, 32, 32}, rng);
    for (auto _ : state) {
        Tensor cols = im2col(x, geom);
        benchmark::DoNotOptimize(cols.data());
    }
}
BENCHMARK(BM_Im2colCifar);

void
BM_ColumnReorderPixelMajor(benchmark::State &state)
{
    ConvGeometry geom;
    geom.inChannels = 3;
    geom.inHeight = 32;
    geom.inWidth = 32;
    geom.outChannels = 64;
    geom.kernelH = 5;
    geom.kernelW = 5;
    geom.pad = 2;
    Rng rng(3);
    Tensor x = Tensor::randomNormal({geom.rows(), geom.cols()}, rng);
    ReusePattern p;
    p.columnOrder = ColumnOrder::PixelMajor;
    auto col_perm = columnPermutation(p, geom);
    std::vector<uint32_t> id(geom.rows());
    for (size_t i = 0; i < id.size(); ++i)
        id[i] = static_cast<uint32_t>(i);
    for (auto _ : state) {
        Tensor xr = reorderMatrix(x, id, col_perm);
        benchmark::DoNotOptimize(xr.data());
    }
}
BENCHMARK(BM_ColumnReorderPixelMajor);

void
BM_LshSignatures(benchmark::State &state)
{
    const size_t h = static_cast<size_t>(state.range(0));
    Rng rng(4);
    Tensor x = redundantMatrix(1024, 25, 16, 5);
    HashFamily family = HashFamily::random(h, 25, rng);
    StridedItems items{x.data(), 1024, 25, 25, 1};
    for (auto _ : state) {
        auto sigs = family.signatures(items);
        benchmark::DoNotOptimize(sigs.data());
    }
}
BENCHMARK(BM_LshSignatures)->Arg(2)->Arg(4)->Arg(8);

void
BM_ClusterBySignature(benchmark::State &state)
{
    Rng rng(5);
    Tensor x = redundantMatrix(1024, 25, 16, 6);
    HashFamily family = HashFamily::random(4, 25, rng);
    StridedItems items{x.data(), 1024, 25, 25, 1};
    for (auto _ : state) {
        ClusterResult res = clusterBySignature(items, family);
        benchmark::DoNotOptimize(res.assignments.data());
    }
}
BENCHMARK(BM_ClusterBySignature);

void
BM_ExactGemmRedundant(benchmark::State &state)
{
    Tensor x = redundantMatrix(1024, 75, 8, 7);
    Rng rng(7);
    Tensor w = Tensor::randomNormal({75, 64}, rng);
    Tensor y({1024, 64});
    for (auto _ : state) {
        gemm(x, w, y);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_ExactGemmRedundant);

void
BM_VerticalReuseRedundant(benchmark::State &state)
{
    Tensor x = redundantMatrix(1024, 75, 8, 7);
    Rng rng(7);
    Tensor w = Tensor::randomNormal({75, 64}, rng);
    VerticalSlicing s = VerticalSlicing::plan(75, 25, 1);
    Rng frng(8);
    auto fams = randomVerticalFamilies(s, 75, 4, frng);
    for (auto _ : state) {
        Tensor y = verticalReuseMultiply(x, w, s, fams, nullptr, nullptr);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_VerticalReuseRedundant);

void
BM_HorizontalReuseRedundant(benchmark::State &state)
{
    // Column-redundant input for the horizontal direction.
    Rng rng(9);
    Tensor protos = Tensor::randomNormal({8, 1024}, rng);
    Tensor x({1024, 75});
    for (size_t c = 0; c < 75; ++c) {
        size_t p = rng.uniformInt(8);
        for (size_t r = 0; r < 1024; ++r)
            x.at2(r, c) = protos.at2(p, r);
    }
    Tensor w = Tensor::randomNormal({75, 64}, rng);
    HorizontalSlicing s = HorizontalSlicing::plan(1024, 256);
    Rng frng(10);
    auto fams = randomHorizontalFamilies(s, 1024, 4, frng);
    for (auto _ : state) {
        Tensor y = horizontalReuseMultiply(x, w, s, fams, nullptr, nullptr);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_HorizontalReuseRedundant);

void
BM_Int8Matmul(benchmark::State &state)
{
    // CifarNet Conv2 shape through the quantized path.
    Rng rng(11);
    Tensor a = Tensor::randomNormal({256, 1600}, rng);
    Tensor b = Tensor::randomNormal({1600, 64}, rng);
    Int8Tensor qa = quantizeInt8(a);
    Int8Tensor qb = quantizeInt8(b);
    for (auto _ : state) {
        Tensor y = int8Matmul(qa, qb, nullptr);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * 256 * 1600 * 64);
}
BENCHMARK(BM_Int8Matmul);

void
BM_FcReuseSegment(benchmark::State &state)
{
    // FC segment reuse: batch 8, F = 1024 in 32-wide segments, O = 64.
    Rng rng(12);
    Tensor x = Tensor::randomNormal({8, 1024}, rng);
    Tensor w = Tensor::randomNormal({1024, 64}, rng);
    Tensor bias({64});
    HashFamily family = HashFamily::random(4, 32, rng);
    for (auto _ : state) {
        Tensor y = fcReuseForward(x, w, bias, 32, family, nullptr,
                                  nullptr);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_FcReuseSegment);

void
BM_FaultGateDisarmed(benchmark::State &state)
{
    // The disarmed fault gate on a hot path: must be one relaxed
    // atomic load, indistinguishable from the bare loop.
    uint64_t acc = 0;
    for (auto _ : state) {
        if (faultpoint::anyArmed())
            acc += 1;
        acc += 1;
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_FaultGateDisarmed);

void
BM_RecoveryDomainNoFault(benchmark::State &state)
{
    // The serve worker's per-request containment boundary with no
    // fault firing: arming the domain is two thread-local bumps and
    // entering the try block is free (zero-cost exceptions), so this
    // must stay within noise of the bare loop — containment is paid
    // only when a panic actually throws.
    uint64_t acc = 0;
    for (auto _ : state) {
        RecoveryDomain domain;
        try {
            acc += 1;
        } catch (const PanicException &) {
            acc = 0;
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_RecoveryDomainNoFault);

void
BM_GuardedReuseConv(benchmark::State &state)
{
    // The guarded conv algorithm vs its unguarded inner path. Arg:
    // 0 = unguarded baseline, 1 = guard installed but disabled (the
    // "off-path" whose overhead must stay within noise of 0, per the
    // trace-gate criterion), 2 = guard enabled (includes the sampled
    // verification GEMM rows).
    ConvGeometry geom;
    geom.batch = 1;
    geom.inChannels = 3;
    geom.inHeight = 32;
    geom.inWidth = 32;
    geom.outChannels = 64;
    geom.kernelH = 5;
    geom.kernelW = 5;
    geom.stride = 1;
    geom.pad = 2;
    Tensor x = redundantMatrix(1024, 75, 8, 7);
    Rng rng(7);
    Tensor w = Tensor::randomNormal({75, 64}, rng);
    ReusePattern p = ReusePattern::conventional(geom, 4);

    GuardConfig cfg;
    cfg.enabled = state.range(0) != 0;
    cfg.marginFactor = 1e9; // stay on the full-reuse rung
    GuardedReuseConvAlgo guarded(p, cfg, HashMode::Random, 7);
    guarded.fit(x, geom);
    ReuseConvAlgo plain(p, HashMode::Random, 7);
    plain.fit(x, geom);

    for (auto _ : state) {
        Tensor y = state.range(0) == 0
                       ? plain.multiply(x, w, geom, nullptr)
                       : guarded.multiply(x, w, geom, nullptr);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_GuardedReuseConv)->Arg(0)->Arg(1)->Arg(2);

void
BM_UntaggedReportOps(benchmark::State &state)
{
    // reportOps() with tracing enabled but no TraceScope: the counts
    // land in the per-thread "(untagged)" slot. Before the slots were
    // sharded this serialized every thread on one global mutex; the
    // multi-threaded variants must now scale with thread count.
    if (state.thread_index() == 0) {
        trace::reset();
        trace::setEnabled(true);
    }
    for (auto _ : state)
        reportOps(nullptr, Stage::Gemm, {.macs = 1});
    if (state.thread_index() == 0) {
        trace::setEnabled(false);
        trace::reset();
    }
}
BENCHMARK(BM_UntaggedReportOps)->Threads(1)->Threads(2)->Threads(4);

void
BM_ProfGateDisabled(benchmark::State &state)
{
    // A ProfSpan with the profiler off (the default): construction and
    // destruction must reduce to one relaxed atomic load, matching the
    // trace/fault gate criterion.
    uint64_t acc = 0;
    for (auto _ : state) {
        profiler::ProfSpan span("bench.gate");
        acc += 1;
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_ProfGateDisabled);

void
BM_EventlogGateDisabled(benchmark::State &state)
{
    // eventlog::record() with the journal off (the default): the
    // inline gate must reduce the whole call to one relaxed atomic
    // load, matching the trace/fault/profiler gate criterion.
    uint64_t acc = 0;
    for (auto _ : state) {
        eventlog::record(eventlog::Type::KernelReuse, 0, 0.5, 64.0, 0.0,
                         8);
        acc += 1;
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_EventlogGateDisabled);

void
BM_RtraceGateDisabled(benchmark::State &state)
{
    // A rtrace::RequestScope with request tracing off (the default):
    // construction and destruction must reduce to one relaxed atomic
    // load, matching the trace/fault/profiler/eventlog gate criterion.
    uint64_t acc = 0;
    for (auto _ : state) {
        rtrace::RequestScope scope(acc);
        acc += 1;
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_RtraceGateDisabled);

void
BM_TelemetryGateDisabled(benchmark::State &state)
{
    // telemetry::enabled() with no exporter running (the default):
    // callers branching on it must pay one relaxed atomic load.
    uint64_t acc = 0;
    for (auto _ : state) {
        if (telemetry::enabled())
            acc += 100;
        acc += 1;
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_TelemetryGateDisabled);

void
BM_AuditGateDisabled(benchmark::State &state)
{
    // audit::recordForward() with the audit disarmed (the default):
    // the inline gate must reduce the whole hook to one relaxed atomic
    // load, matching the trace/fault/profiler/eventlog gate criterion.
    ReuseStats stats;
    stats.totalVectors = 256;
    stats.totalCentroids = 32;
    uint64_t acc = 0;
    for (auto _ : state) {
        audit::recordForward(&acc, stats);
        acc += 1;
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_AuditGateDisabled);

void
BM_CanaryGateDisabled(benchmark::State &state)
{
    // canary::observe() with the canary disarmed (the default, rate
    // 0): one relaxed atomic load of the rate bit-pattern.
    uint64_t acc = 0;
    for (auto _ : state) {
        canary::observe(&acc, 0.1, 1.0, 8, false);
        acc += 1;
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_CanaryGateDisabled);

void
BM_SyntheticCifarGeneration(benchmark::State &state)
{
    SyntheticConfig cfg;
    cfg.numSamples = 16;
    for (auto _ : state) {
        Dataset d = makeSyntheticCifar(cfg);
        benchmark::DoNotOptimize(d.images.data());
    }
}
BENCHMARK(BM_SyntheticCifarGeneration);

/**
 * Console reporter that additionally captures each run's per-iteration
 * real time, so the BENCH record carries machine-comparable
 * "<name>Ms" keys (name sanitized: '/' and ':' become '_') and
 * bench_diff can gate kernel latencies across PRs.
 */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    std::vector<std::pair<std::string, double>> timesMs;

    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const Run &run : reports) {
            if (run.run_type != Run::RT_Iteration || run.error_occurred)
                continue;
            // Benches here use the default ns time unit; /1e6 matches
            // how baseline keys were derived from the JSON reporter's
            // real_time field.
            timesMs.emplace_back(sanitize(run.benchmark_name()),
                                 run.GetAdjustedRealTime() / 1e6);
        }
        ConsoleReporter::ReportRuns(reports);
    }

  private:
    static std::string
    sanitize(std::string name)
    {
        for (char &c : name)
            if (c == '/' || c == ':')
                c = '_';
        return name;
    }
};

/** Average wall-clock milliseconds of @p fn over @p reps calls. */
template <typename F>
double
timeMs(F &&fn, int reps)
{
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i)
        fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count() /
           reps;
}

/**
 * In-process scalar-vs-dispatched speedups of the three dispatched
 * kernel families, recorded as HigherIsBetter keys. Skipped (no keys)
 * when dispatch already resolved to scalar — a speedup of a kernel
 * against itself is noise, not signal.
 */
void
recordDispatchSpeedups(genreuse::bench::BenchJson &bj)
{
    const simd::Level best = simd::activeLevel();
    bj.meta("simdLevel", simd::levelName(best));
    if (best == simd::Level::Scalar)
        return;

    Rng rng(21);
    Tensor a = Tensor::randomNormal({256, 1600}, rng);
    Tensor b = Tensor::randomNormal({1600, 64}, rng);
    Tensor c({256, 64});
    Int8Tensor qa = quantizeInt8(a);
    Int8Tensor qb = quantizeInt8(b);
    std::vector<int32_t> qc(256 * 64);
    const size_t count = 1 << 15, l = 25, h = 8;
    Tensor proj = Tensor::randomNormal({count, h}, rng);
    std::vector<float> biases(h, 0.0f);
    std::vector<uint64_t> sigs(count);
    (void)l;

    struct Timed
    {
        const char *key;
        std::function<void()> fn;
        int reps;
    };
    const Timed kernels[] = {
        {"gemmF32DispatchSpeedup",
         [&] {
             simd::ops().gemmF32(a.data(), b.data(), c.data(), 256, 64,
                                 1600, 1600, 64, 64, false);
         },
         5},
        {"gemmInt8DispatchSpeedup",
         [&] {
             simd::ops().gemmInt8(qa.data.data(), qb.data.data(),
                                  qc.data(), 256, 64, 1600, 1600, 64,
                                  64);
         },
         5},
        {"signProjectDispatchSpeedup",
         [&] {
             simd::ops().signProject(proj.data(), biases.data(), count,
                                     h, sigs.data());
         },
         50},
    };
    for (const Timed &kr : kernels) {
        (void)simd::setActiveLevel(simd::Level::Scalar);
        kr.fn(); // warm
        const double scalar_ms = timeMs(kr.fn, kr.reps);
        (void)simd::setActiveLevel(best);
        kr.fn();
        const double simd_ms = timeMs(kr.fn, kr.reps);
        if (simd_ms > 0.0)
            bj.record(kr.key, scalar_ms / simd_ms);
    }
}

} // namespace

// Hand-rolled BENCHMARK_MAIN() so the binary also drops a BENCH_*.json
// record into the suite directory: per-kernel wall-clock "<name>Ms"
// keys captured from the reporter, plus scalar-vs-dispatch speedup
// keys for the SIMD kernel layer. google-benchmark's own reporters
// still work (--benchmark_format=json for the full machine-readable
// dump).
int
main(int argc, char **argv)
{
    genreuse::bench::BenchJson bj("micro_kernels");
    bj.meta("reporter",
            "google-benchmark; rerun with --benchmark_format=json for "
            "the full per-kernel dump");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CapturingReporter reporter;
    bj.record("benchmarksRun",
              static_cast<double>(
                  benchmark::RunSpecifiedBenchmarks(&reporter)));
    for (const auto &[name, ms] : reporter.timesMs)
        bj.record(name + "Ms", ms);
    recordDispatchSpeedups(bj);
    benchmark::Shutdown();
    return 0;
}
