/**
 * @file
 * Table 2 reproduction: time breakdown of the analytical-empirical
 * exploration versus the standard full exploration. The paper explores
 * 100 candidate patterns on SqueezeNet, prunes to 20 with the analytic
 * model, and saves ~80% of the exploration time. This bench runs the
 * same workflow at reproduction scale (a SqueezeNet expand conv, the
 * full generalized scope) and reports measured wall-clock per stage,
 * plus the projected full-exploration time (training every candidate).
 */

#include <cstdio>

#include "bench_common.h"
#include "common/stopwatch.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Table 2: exploration-time breakdown "
                "(analytic-empirical vs standard) ===\n\n");
    CostModel model(McuSpec::stm32f469i());
    Workbench wb = makeWorkbench(ModelKind::SqueezeNet);
    Conv2D *layer = wb.net.findConv("Fire2.expand_3x3.conv");

    // Candidate space (the workflow scope).
    layer->resetAlgo();
    Tensor one = wb.train.gatherImages({0});
    wb.net.forward(one, false);
    ConvGeometry geom = layer->lastGeometry();
    PatternScope scope = PatternScope::defaultScope(geom);
    const size_t num_candidates = enumeratePatterns(scope, geom).size();

    SelectionConfig cfg;
    cfg.promisingCount = std::max<size_t>(1, num_candidates / 5);
    cfg.evalImages = 32;
    SelectionResult result = selectReusePattern(
        wb.net, *layer, wb.train, wb.test, scope, cfg);

    // "Training" in this reproduction = learned-hash fitting plus the
    // accuracy evaluation inside the full check; "Measuring on MCU" is
    // folded into the same pass (the ledger-based latency measurement),
    // so we report the full check as training+measurement combined and
    // additionally time one standalone fit to split the two.
    Stopwatch watch;
    Dataset fit = wb.train.slice(0, 4);
    fitAndInstall(wb.net, *layer, result.profiles[0].pattern, fit);
    double one_fit_s = watch.seconds();
    resetAllConvs(wb.net);

    const double full_check_s = result.fullCheckSeconds;
    const double per_candidate_s =
        full_check_s / std::max<size_t>(1, result.checked.size());
    const double ours_total = result.profilingSeconds +
                              result.pruneSeconds + full_check_s;
    const double standard_total = per_candidate_s * num_candidates;

    TextTable t;
    t.setHeader({"stage", "our method", "standard"});
    t.addRow({"candidates", std::to_string(num_candidates),
              std::to_string(num_candidates)});
    t.addRow({"profiling", formatDouble(result.profilingSeconds, 2) + " s",
              "-"});
    t.addRow({"prune", formatDouble(result.pruneSeconds, 3) + " s", "-"});
    t.addRow({"full check (train+measure)",
              std::to_string(result.checked.size()) + " x " +
                  formatDouble(per_candidate_s, 2) + " s",
              std::to_string(num_candidates) + " x " +
                  formatDouble(per_candidate_s, 2) + " s"});
    t.addRow({"(hash fit alone)", formatDouble(one_fit_s, 2) + " s", ""});
    t.addRow({"total", formatDouble(ours_total, 2) + " s",
              formatDouble(standard_total, 2) + " s"});
    std::printf("%s\n", t.render().c_str());
    std::printf("exploration time saved: %.0f%% (paper: ~80%%)\n",
                100.0 * (1.0 - ours_total / standard_total));
    return 0;
}
