/**
 * @file
 * Table 2 reproduction: time breakdown of the analytical-empirical
 * exploration versus the standard full exploration. The paper explores
 * 100 candidate patterns on SqueezeNet, prunes to 20 with the analytic
 * model, and saves ~80% of the exploration time. This bench runs the
 * same workflow at reproduction scale (a SqueezeNet expand conv, the
 * full generalized scope) and reports measured wall-clock per stage,
 * plus the projected full-exploration time (training every candidate).
 *
 * The workflow runs twice — serial (--threads 1) and parallel
 * (--threads N, default hardware concurrency) — to measure the
 * exploration engine's speedup and verify the two runs produce a
 * bit-identical SelectionResult (the engine's determinism guarantee;
 * see src/core/explorer.h).
 */

#include <cstdio>

#include "bench_common.h"
#include "common/args.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/explorer.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const size_t threads = args.has("threads")
                               ? static_cast<size_t>(
                                     args.getInt("threads", 0))
                               : ThreadPool::hardwareThreads();

    std::printf("=== Table 2: exploration-time breakdown "
                "(analytic-empirical vs standard) ===\n\n");
    CostModel model(McuSpec::stm32f469i());
    BenchJson bj("table2_exploration_time");
    bj.meta("board", model.spec().name);
    bj.meta("threads", static_cast<double>(threads));
    Workbench wb = makeWorkbench(ModelKind::SqueezeNet);
    Conv2D *layer = wb.net.findConv("Fire2.expand_3x3.conv");

    // Candidate space (the workflow scope).
    layer->resetAlgo();
    Tensor one = wb.train.gatherImages({0});
    wb.net.forward(one, false);
    ConvGeometry geom = layer->lastGeometry();
    PatternScope scope = PatternScope::defaultScope(geom);
    const size_t num_candidates = enumeratePatterns(scope, geom).size();

    SelectionConfig cfg;
    cfg.promisingCount = std::max<size_t>(1, num_candidates / 5);
    cfg.evalImages = evalImages(32);

    // Serial reference run, then the parallel engine.
    cfg.threads = 1;
    Stopwatch watch;
    SelectionResult serial = selectReusePattern(
        wb.net, *layer, wb.train, wb.test, scope, cfg);
    const double serial_s = watch.seconds();

    cfg.threads = threads;
    watch.reset();
    SelectionResult result = selectReusePattern(
        wb.net, *layer, wb.train, wb.test, scope, cfg);
    const double parallel_s = watch.seconds();

    // "Training" in this reproduction = learned-hash fitting plus the
    // accuracy evaluation inside the full check; "Measuring on MCU" is
    // folded into the same pass (the ledger-based latency measurement),
    // so we report the full check as training+measurement combined and
    // additionally time one standalone fit to split the two.
    watch.reset();
    Dataset fit = wb.train.slice(0, 4);
    fitAndInstall(wb.net, *layer, result.profiles[0].pattern, fit);
    double one_fit_s = watch.seconds();
    resetAllConvs(wb.net);

    const double full_check_s = result.fullCheckSeconds;
    const double per_candidate_s =
        full_check_s / std::max<size_t>(1, result.checked.size());
    const double ours_total = result.profilingSeconds +
                              result.pruneSeconds + full_check_s;
    const double standard_total = per_candidate_s * num_candidates;

    TextTable t;
    t.setHeader({"stage", "our method", "standard"});
    t.addRow({"candidates", std::to_string(num_candidates),
              std::to_string(num_candidates)});
    t.addRow({"profiling", formatDouble(result.profilingSeconds, 2) + " s",
              "-"});
    t.addRow({"prune", formatDouble(result.pruneSeconds, 3) + " s", "-"});
    t.addRow({"full check (train+measure)",
              std::to_string(result.checked.size()) + " x " +
                  formatDouble(per_candidate_s, 2) + " s",
              std::to_string(num_candidates) + " x " +
                  formatDouble(per_candidate_s, 2) + " s"});
    t.addRow({"(hash fit alone)", formatDouble(one_fit_s, 2) + " s", ""});
    t.addRow({"total", formatDouble(ours_total, 2) + " s",
              formatDouble(standard_total, 2) + " s"});
    std::printf("%s\n", t.render().c_str());
    std::printf("exploration time saved: %.0f%% (paper: ~80%%)\n\n",
                100.0 * (1.0 - ours_total / standard_total));
    bj.meta("candidates", static_cast<double>(num_candidates));
    bj.record("oursTotalSeconds", ours_total);
    bj.record("standardTotalSeconds", standard_total);
    bj.record("timeSavedPct",
              100.0 * (1.0 - ours_total / standard_total));

    const bool identical = identicalResults(serial, result);
    std::printf("=== exploration engine: serial vs %zu threads ===\n",
                threads);
    std::printf("serial   (1 thread ): %.2f s (profiling %.2f s)\n",
                serial_s, serial.profilingSeconds);
    std::printf("parallel (%zu threads): %.2f s (profiling %.2f s)\n",
                threads, parallel_s, result.profilingSeconds);
    std::printf("exploration speedup: %.2fx (profiling stage: %.2fx)\n",
                serial_s / parallel_s,
                serial.profilingSeconds / result.profilingSeconds);
    std::printf("results bit-identical across thread counts: %s\n",
                identical ? "YES" : "NO (BUG)");
    bj.record("explorationSpeedup", serial_s / parallel_s);
    bj.record("bitIdenticalAcrossThreads", identical ? 1.0 : 0.0);
    return identical ? 0 : 1;
}
