/**
 * @file
 * Ablation of 2-D neuron blocks (§3.3/§3.5): the generalization of the
 * 1-D neuron vector to r x L blocks. On a redundant conv workload,
 * sweeps blockRows r in {1, 2, 4} at several hash counts and reports
 * the output error, redundancy ratio and modeled F4 latency — showing
 * the tradeoff blocks add to the reuse space (fewer clustering items
 * and hash invocations, coarser reuse units).
 */

#include <cstdio>

#include "bench_common.h"
#include "core/latency_model.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Ablation: 2-D neuron blocks (blockRows sweep) ===\n\n");
    CostModel model(McuSpec::stm32f469i());

    SyntheticConfig cfg;
    cfg.numSamples = 2;
    cfg.noiseStddev = 0.02f;
    Dataset data = makeSyntheticCifar(cfg);
    ConvGeometry geom;
    geom.batch = 1;
    geom.inChannels = 3;
    geom.inHeight = 32;
    geom.inWidth = 32;
    geom.outChannels = 32;
    geom.kernelH = 5;
    geom.kernelW = 5;
    geom.stride = 1;
    geom.pad = 2;
    Tensor fit_x = im2col(data.gatherImages({0}), geom);
    Tensor run_x = im2col(data.gatherImages({1}), geom);
    Rng rng(55);
    Tensor w = Tensor::randomNormal({geom.cols(), geom.outChannels}, rng,
                                    0.0f, 0.1f);
    Tensor exact = matmul(run_x, w);

    BenchJson bj("ablation_neuron_blocks");
    TextTable t;
    t.setHeader({"blockRows", "H", "r_t", "rel. error", "latency(ms)",
                 "vs r=1"});
    for (size_t h : {2, 4, 6}) {
        double r1_ms = 0.0;
        for (size_t r : {1, 2, 4}) {
            ReusePattern p;
            p.granularity = 25;
            p.blockRows = r;
            p.numHashes = h;
            ReuseConvAlgo algo(p, HashMode::Learned, 7);
            algo.fit(fit_x, geom);
            CostLedger ledger;
            OpCounts im2col_ops;
            im2col_ops.elemMoves = run_x.size();
            ledger.add(Stage::Transformation, im2col_ops);
            Tensor approx = algo.multiply(run_x, w, geom, &ledger);
            double ms = ledger.totalMs(model);
            if (r == 1)
                r1_ms = ms;
            t.addRow({std::to_string(r), std::to_string(h),
                      formatDouble(algo.lastStats().redundancyRatio(), 3),
                      formatDouble(relativeError(exact, approx), 4),
                      formatDouble(ms, 2),
                      formatSpeedup(r1_ms / ms)});
            const std::string key = "r" + std::to_string(r) + "/H" +
                                    std::to_string(h);
            bj.record(key + "/relError", relativeError(exact, approx));
            bj.record(key + "/latencyMs", ms);
        }
        t.addSeparator();
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Observed tradeoff: blocks group r rows into one reuse "
                "unit (fewer clustering items, lower r_t at equal H) but "
                "pay a block-materialization copy, so 1-D vectors stay "
                "the latency-optimal choice on this workload — matching "
                "the paper's Table 1, where every selected configuration "
                "uses 1-D units and blocks serve to widen the accuracy "
                "side of the pattern space.\n");
    return 0;
}
