/**
 * @file
 * Merges the per-bench BENCH_*.json artifacts of one run directory
 * into a single suite document ("genreuse.bench-suite/1"), so a whole
 * run can be archived or diffed as one file. Usage:
 *
 *     bench_json_merge [dir] [out]
 *
 * `dir` defaults to $GENREUSE_BENCH_JSON_DIR (or "."), `out` defaults
 * to <dir>/BENCH_suite.json. Each input document is spliced verbatim
 * under "benches" in filename order; the output file itself is skipped
 * when rescanning, so the tool is idempotent.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace fs = std::filesystem;

namespace {

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Trim trailing whitespace/newlines so splices stay tight. */
std::string
rtrim(std::string s)
{
    while (!s.empty() &&
           (s.back() == '\n' || s.back() == '\r' || s.back() == ' '))
        s.pop_back();
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *env_dir = std::getenv("GENREUSE_BENCH_JSON_DIR");
    fs::path dir = argc > 1 ? argv[1] : (env_dir ? env_dir : ".");
    fs::path out = argc > 2 ? fs::path(argv[2]) : dir / "BENCH_suite.json";

    if (!fs::is_directory(dir)) {
        std::fprintf(stderr, "bench_json_merge: not a directory: %s\n",
                     dir.string().c_str());
        return 1;
    }

    std::vector<fs::path> inputs;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) != 0 ||
            entry.path().extension() != ".json")
            continue;
        if (fs::weakly_canonical(entry.path()) ==
            fs::weakly_canonical(out))
            continue;
        inputs.push_back(entry.path());
    }
    std::sort(inputs.begin(), inputs.end());

    if (inputs.empty()) {
        std::fprintf(stderr,
                     "bench_json_merge: no BENCH_*.json files in %s\n",
                     dir.string().c_str());
        return 1;
    }

    genreuse::JsonWriter w;
    w.beginObject();
    w.key("schema").value("genreuse.bench-suite/1");
    w.key("count").value(static_cast<uint64_t>(inputs.size()));
    w.key("benches").beginArray();
    for (const fs::path &p : inputs)
        w.raw(rtrim(readFile(p)));
    w.endArray();
    w.endObject();

    std::ofstream os(out);
    if (!os) {
        std::fprintf(stderr, "bench_json_merge: cannot write %s\n",
                     out.string().c_str());
        return 1;
    }
    os << w.str() << "\n";
    std::printf("[bench-json] merged %zu files -> %s\n", inputs.size(),
                out.string().c_str());
    return 0;
}
