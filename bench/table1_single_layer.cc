/**
 * @file
 * Table 1 reproduction: single-layer performance of generalized reuse
 * on the STM32F469I. For every targeted convolution of CifarNet, ZfNet
 * and SqueezeNet, three configurations (L, H, D) are evaluated: the
 * layer's analytically selected generalized patterns at different hash
 * counts. Reported per row, as in the paper: r_t, speedup vs CMSIS-NN
 * (the exact convolution), speedup vs conventional reuse, and the
 * accuracy delta vs conventional reuse.
 */

#include <cstdio>

#include "bench_common.h"

using namespace genreuse;
using namespace genreuse::bench;

namespace {

void
runModel(ModelKind kind, const CostModel &model, BenchJson &bj)
{
    Workbench wb = makeWorkbench(kind);
    std::printf("--- Table 1: %s (baseline exact accuracy %.4f) ---\n",
                modelName(kind), wb.baselineAccuracy);
    bj.record(std::string(modelName(kind)) + "/baselineAccuracy",
              wb.baselineAccuracy);

    TextTable t;
    t.setHeader({"ConvLayer", "K", "M", "L", "H", "D", "r_t",
                 "speedup vs CMSIS-NN", "speedup vs Reuse",
                 "dAcc vs Reuse"});

    for (Conv2D *layer : reuseTargets(wb.net, kind)) {
        // Conventional-reuse baseline for this layer (H = 4).
        ReusePattern conv_pattern;
        conv_pattern.granularity =
            layer->kernelSize() * layer->kernelSize();
        conv_pattern.numHashes = 4;
        SingleLayerResult base = measureSingleLayer(
            wb, *layer, conv_pattern, model, evalImages(32));

        const size_t din = layer->inChannels() * layer->kernelSize() *
                           layer->kernelSize();
        bool first = true;
        for (size_t h : {5, 3, 2}) {
            ReusePattern p =
                pickPatternAnalytically(wb.net, *layer, wb.train, h, model);
            SingleLayerResult r =
                measureSingleLayer(wb, *layer, p, model, evalImages(32));
            const std::string key = std::string(modelName(kind)) + "/" +
                                    layer->name() + "/H" +
                                    std::to_string(h);
            bj.record(key + "/speedupVsExact", r.speedupVsExact());
            bj.record(key + "/speedupVsReuse",
                      base.layerReuseMs / r.layerReuseMs);
            bj.record(key + "/dAccuracyVsReuse", r.accuracy - base.accuracy);
            t.addRow({first ? layer->name() : "",
                      first ? std::to_string(din) : "",
                      first ? std::to_string(layer->outChannels()) : "",
                      std::to_string(p.effectiveGranularity(
                          layer->lastGeometry())),
                      std::to_string(p.numHashes), toString(p.direction),
                      formatDouble(r.redundancy, 3),
                      formatSpeedup(r.speedupVsExact()),
                      formatSpeedup(base.layerReuseMs / r.layerReuseMs),
                      formatDouble(r.accuracy - base.accuracy, 4)});
            first = false;
        }
        t.addSeparator();
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main()
{
    std::printf("=== Table 1: single-layer performance benefits "
                "(STM32F469I) ===\n");
    std::printf("D: M-1 = vertical reuse, M-2 = horizontal reuse\n\n");
    CostModel model(McuSpec::stm32f469i());
    BenchJson bj("table1_single_layer");
    bj.meta("board", model.spec().name);
    runModel(ModelKind::CifarNet, model, bj);
    runModel(ModelKind::ZfNet, model, bj);
    runModel(ModelKind::SqueezeNet, model, bj);
    return 0;
}
