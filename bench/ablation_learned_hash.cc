/**
 * @file
 * Ablation of learned vs random hashing (§3.1 footnote 1): random
 * hashing makes the reuse-optimized model's accuracy fluctuate run to
 * run (the paper cites 0.73-0.76 on CifarNet), while learned hash
 * vectors give a stable, better value. Runs CifarNet Conv2 reuse with
 * several random-hash seeds versus the deterministic learned family.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/math_util.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Ablation: learned vs random LSH hash vectors "
                "(CifarNet Conv2) ===\n\n");
    CostModel model(McuSpec::stm32f469i());
    BenchJson bj("ablation_learned_hash");
    Workbench wb = makeWorkbench(ModelKind::CifarNet);
    Conv2D *layer = wb.net.findConv("conv2");
    std::printf("baseline exact accuracy: %.4f\n\n", wb.baselineAccuracy);
    bj.record("baselineAccuracy", wb.baselineAccuracy);

    ReusePattern p;
    p.granularity = 25;
    p.numHashes = 4;

    std::vector<double> random_accs;
    Dataset fit = wb.train.slice(0, 4);
    const uint64_t seeds = smokeMode() ? 2 : 5;
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
        fitAndInstall(wb.net, *layer, p, fit, HashMode::Random, seed);
        Measurement m =
            measureNetwork(wb.net, wb.test, model, evalImages(48));
        resetAllConvs(wb.net);
        random_accs.push_back(m.accuracy);
    }
    fitAndInstall(wb.net, *layer, p, fit, HashMode::Learned, 1);
    Measurement learned =
        measureNetwork(wb.net, wb.test, model, evalImages(48));
    resetAllConvs(wb.net);

    TextTable t;
    t.setHeader({"hash vectors", "accuracy (min)", "accuracy (max)",
                 "accuracy (mean)", "stddev"});
    t.addRow({"random (" + std::to_string(seeds) + " seeds)",
              formatDouble(*std::min_element(random_accs.begin(),
                                             random_accs.end()), 4),
              formatDouble(*std::max_element(random_accs.begin(),
                                             random_accs.end()), 4),
              formatDouble(mean(random_accs), 4),
              formatDouble(stddev(random_accs), 4)});
    bj.record("random/minAccuracy",
              *std::min_element(random_accs.begin(), random_accs.end()));
    bj.record("random/maxAccuracy",
              *std::max_element(random_accs.begin(), random_accs.end()));
    bj.record("random/meanAccuracy", mean(random_accs));
    bj.record("random/stddev", stddev(random_accs));
    bj.record("learned/accuracy", learned.accuracy);
    t.addRow({"learned (deterministic)", formatDouble(learned.accuracy, 4),
              formatDouble(learned.accuracy, 4),
              formatDouble(learned.accuracy, 4), "0.0000"});
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected shape (paper footnote 1): random hashing "
                "fluctuates across seeds; learned hashing is stable and "
                "at least as accurate as the random mean.\n");
    return 0;
}
