/**
 * @file
 * Bench regression gate: compares the "results" scalars of two bench
 * JSON artifacts (schema "genreuse.bench/1" single records or
 * "genreuse.bench-suite/1" merged suites) and prints a per-bench delta
 * table. Usage:
 *
 *     bench_diff <baseline.json> <current.json>
 *         [--threshold 5%] [--report-only] [--allow-missing-baseline]
 *         [--wallclock-threshold 50%] [--wallclock-benches a,b,...]
 *
 * Result keys are classified by direction: keys naming a cost (latency,
 * *Ms, drift, error, fallback, drop, loss, shortfall) regress when they
 * increase, keys naming a benefit (speedup, accuracy, gain, redundancy)
 * regress when they decrease, and everything else is reported without
 * gating. Keys present only in the current artifact are new benches:
 * they are listed as "new" and never gate (regenerating the baseline
 * is what promotes them to gated comparisons). The exit status is
 * non-zero when any bench regresses beyond the threshold — unless
 * --report-only is given, which prints the same table but always
 * exits 0 (for cross-machine comparisons where absolute timings are
 * not comparable). GENREUSE_BENCH_DIFF_STRICT=1 overrides
 * --report-only and forces gating.
 *
 * Most records in this suite are *modeled* (cycle-cost latencies, op
 * ledgers, accuracies): they reproduce bit-identically in smoke mode,
 * so the tight default threshold is the right gate for them. Benches
 * named in --wallclock-benches measure real wall clock
 * (google-benchmark timings, measured exploration seconds, serve
 * latency percentiles), which on a small shared machine legitimately
 * swings tens of percent run-to-run — even from code-layout shifts in
 * an unrelated diff. Their keys gate against the wider
 * --wallclock-threshold instead (default 50%, still far below the
 * 3-12x deltas a genuinely broken kernel or disabled dispatch
 * produces), and their verdict column reads "ok (wall)" so readers
 * know which band applied.
 */

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "common/args.h"
#include "common/json.h"
#include "common/table.h"

using namespace genreuse;

namespace {

/** One bench's numeric results, in document order. */
struct BenchResults
{
    std::string name;
    std::vector<std::pair<std::string, double>> results;

    const double *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : results)
            if (k == key)
                return &v;
        return nullptr;
    }
};

/** Which way a result key is allowed to move. */
enum class Direction
{
    LowerIsBetter,  //!< regresses when it increases
    HigherIsBetter, //!< regresses when it decreases
    Informational,  //!< never gates
};

bool
containsNoCase(const std::string &haystack, const char *needle)
{
    std::string h = haystack;
    std::transform(h.begin(), h.end(), h.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return h.find(needle) != std::string::npos;
}

Direction
classify(const std::string &key)
{
    // Three priority tiers, because compound keys mention both axes:
    // "accuracyGainAtMatchedLatency" is a gain (its latency is the
    // *matching* condition), while "accuracyDropPct" is a cost even
    // though it mentions accuracy.
    // Queue-dependent latencies from the serve bench's open-loop
    // sections report but never gate: in an open-loop generator, the
    // moment the offered rate exceeds the box's momentary capacity the
    // queue (and thus total latency) grows without bound, so runs of
    // the same binary swing 2-3x — even the wall-clock threshold can't
    // absorb that. The per-request service-time split, throughput, and
    // closed-loop keys still gate; they don't include queueing delay.
    // Exact names for the open-loop totals because "mean_ms" as a
    // substring would also catch the service split.
    static const char *const kQueueDependent[] = {"queue_wait",
                                                  "degraded_"};
    static const char *const kQueueDependentExact[] = {
        "p50_ms", "p95_ms", "p99_ms", "p999_ms", "mean_ms"};
    static const char *const kStrongBenefits[] = {"speedup", "gain"};
    static const char *const kCosts[] = {"latency", "ms",       "drift",
                                         "error",   "fallback", "drop",
                                         "loss",    "shortfall"};
    static const char *const kBenefits[] = {"accuracy", "redundancy"};
    for (const char *n : kQueueDependent)
        if (containsNoCase(key, n))
            return Direction::Informational;
    for (const char *n : kQueueDependentExact)
        if (key == n)
            return Direction::Informational;
    for (const char *n : kStrongBenefits)
        if (containsNoCase(key, n))
            return Direction::HigherIsBetter;
    for (const char *n : kCosts)
        if (containsNoCase(key, n))
            return Direction::LowerIsBetter;
    for (const char *n : kBenefits)
        if (containsNoCase(key, n))
            return Direction::HigherIsBetter;
    return Direction::Informational;
}

/** Split a comma-separated bench-name list ("a,b,c"). */
std::vector<std::string>
splitCommaList(const std::string &list)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : list) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/** The build-identity stamp carried by genreuse.bench/1 records. */
struct Provenance
{
    std::string git, compiler, preset, simd;

    bool
    empty() const
    {
        return git.empty() && compiler.empty() && preset.empty() &&
               simd.empty();
    }
};

/** Extract per-bench results from a parsed bench or suite document.
 *  @p prov keeps the first provenance stamp seen (records merged into
 *  one suite come from one build, so the first one stands for all). */
Status
collect(const JsonValue &doc, const std::string &path,
        std::vector<BenchResults> &out, Provenance &prov)
{
    const JsonValue *schema = doc.find("schema");
    const std::string s = schema ? schema->stringOr("") : "";
    if (s == "genreuse.bench-suite/1") {
        const JsonValue *benches = doc.find("benches");
        if (!benches || !benches->isArray())
            return Status::error(ErrorCode::InvalidArgument, path,
                                 ": suite document has no \"benches\" "
                                 "array");
        for (const JsonValue &b : benches->items) {
            Status st = collect(b, path, out, prov);
            if (!st.ok())
                return st;
        }
        return Status{};
    }
    if (s != "genreuse.bench/1")
        return Status::error(ErrorCode::InvalidArgument, path,
                             ": unsupported schema '", s,
                             "' (want genreuse.bench/1 or "
                             "genreuse.bench-suite/1)");
    BenchResults br;
    const JsonValue *name = doc.find("bench");
    br.name = name ? name->stringOr("?") : "?";
    if (prov.empty()) {
        if (const JsonValue *p = doc.find("provenance")) {
            const auto field = [&](const char *key) {
                const JsonValue *v = p->find(key);
                return v ? v->stringOr("") : std::string();
            };
            prov.git = field("git");
            prov.compiler = field("compiler");
            prov.preset = field("preset");
            prov.simd = field("simd");
        }
    }
    if (const JsonValue *results = doc.find("results")) {
        for (const auto &[key, v] : results->members)
            if (v.isNumber())
                br.results.emplace_back(key, v.number);
    }
    out.push_back(std::move(br));
    return Status{};
}

const BenchResults *
findBench(const std::vector<BenchResults> &set, const std::string &name)
{
    for (const auto &b : set)
        if (b.name == name)
            return &b;
    return nullptr;
}

/** Relative delta in percent; bounded against tiny baselines so a
 *  0 -> 1e-9 smoke jitter does not read as an infinite regression. */
double
deltaPct(double base, double cur)
{
    if (std::fabs(base) < 1e-12 && std::fabs(cur) < 1e-12)
        return 0.0;
    return (cur - base) / std::max(std::fabs(base), 1e-6) * 100.0;
}

void
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s <baseline.json> <current.json> [--threshold 5%%]\n"
        "       [--report-only] [--allow-missing-baseline]\n"
        "       [--wallclock-threshold 50%%] "
        "[--wallclock-benches a,b,...]\n",
        prog);
}

bool
fileExists(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f)
        std::fclose(f);
    return f != nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    if (args.positional().size() != 2) {
        usage(argv[0]);
        return 2;
    }
    const std::string base_path = args.positional()[0];
    const std::string cur_path = args.positional()[1];

    const auto parse_pct = [&args](const char *flag, const char *dflt,
                                   double &out) {
        std::string s = args.getString(flag, dflt);
        if (!s.empty() && s.back() == '%')
            s.pop_back();
        char *end = nullptr;
        out = std::strtod(s.c_str(), &end);
        if (end == s.c_str() || *end != '\0' || out < 0.0 ||
            !std::isfinite(out)) {
            std::fprintf(stderr, "bench_diff: bad --%s '%s'\n", flag,
                         args.getString(flag, dflt).c_str());
            return false;
        }
        return true;
    };
    double threshold = 0.0, wall_threshold = 0.0;
    if (!parse_pct("threshold", "5%", threshold))
        return 2;
    if (!parse_pct("wallclock-threshold", "50%", wall_threshold))
        return 2;
    const std::vector<std::string> wall_benches =
        splitCommaList(args.getString("wallclock-benches", ""));

    const bool allow_missing = args.has("allow-missing-baseline");
    const char *strict_env = std::getenv("GENREUSE_BENCH_DIFF_STRICT");
    const bool strict = strict_env != nullptr && *strict_env != '\0' &&
                        std::strcmp(strict_env, "0") != 0;
    const bool gate = strict || !args.has("report-only");

    if (!fileExists(base_path) && allow_missing) {
        std::printf("bench_diff: no baseline at %s (first run?); "
                    "nothing to compare\n",
                    base_path.c_str());
        return 0;
    }

    std::vector<BenchResults> base, cur;
    Provenance base_prov, cur_prov;
    for (const auto &[path, out, prov] :
         {std::tuple{&base_path, &base, &base_prov},
          std::tuple{&cur_path, &cur, &cur_prov}}) {
        Expected<JsonValue> doc = parseJsonFile(*path);
        if (!doc.ok()) {
            std::fprintf(stderr, "bench_diff: %s\n",
                         doc.status().toString().c_str());
            return 2;
        }
        Status st = collect(*doc, *path, *out, *prov);
        if (!st.ok()) {
            std::fprintf(stderr, "bench_diff: %s\n",
                         st.toString().c_str());
            return 2;
        }
    }

    // Provenance mismatches warn but never gate: cross-build diffs are
    // legitimate (that is the whole point of a regression gate), the
    // reader just has to know the records came from different builds —
    // especially a baseline stamped with a different SIMD level or
    // compiler, where every wall-clock delta is suspect.
    if (!base_prov.empty() || !cur_prov.empty()) {
        const auto check = [&](const char *what, const std::string &b,
                               const std::string &c) {
            if (b != c)
                std::fprintf(stderr,
                             "bench_diff: WARNING: provenance mismatch: "
                             "%s '%s' (baseline) vs '%s' (current)\n",
                             what, b.c_str(), c.c_str());
        };
        check("git", base_prov.git, cur_prov.git);
        check("compiler", base_prov.compiler, cur_prov.compiler);
        check("preset", base_prov.preset, cur_prov.preset);
        check("simd", base_prov.simd, cur_prov.simd);
    }

    TextTable t;
    t.setHeader({"bench", "result", "baseline", "current", "delta",
                 "verdict"});
    size_t regressions = 0, missing_base = 0, compared = 0;

    for (const BenchResults &cb : cur) {
        const BenchResults *bb = findBench(base, cb.name);
        const bool wall = std::find(wall_benches.begin(),
                                    wall_benches.end(),
                                    cb.name) != wall_benches.end();
        const double bench_threshold = wall ? wall_threshold : threshold;
        for (const auto &[key, value] : cb.results) {
            const double *bv = bb ? bb->find(key) : nullptr;
            if (!bv) {
                // A key only the candidate has is a *new* measurement
                // (a bench added since the baseline was captured), not
                // a regression: report it, never gate on it. Gating
                // here made every added bench fail strict CI until the
                // baseline was regenerated.
                missing_base++;
                t.addRow({cb.name, key, "-", formatDouble(value, 4),
                          "-", "new"});
                continue;
            }
            compared++;
            const double pct = deltaPct(*bv, value);
            const Direction dir = classify(key);
            const bool bad =
                (dir == Direction::LowerIsBetter &&
                 pct > bench_threshold) ||
                (dir == Direction::HigherIsBetter &&
                 pct < -bench_threshold);
            const char *verdict = wall ? "ok (wall)" : "ok";
            if (dir == Direction::Informational)
                verdict = "info";
            else if (bad)
                verdict = "REGRESSED";
            if (bad)
                regressions++;
            char delta[32];
            std::snprintf(delta, sizeof(delta), "%+.2f%%", pct);
            t.addRow({cb.name, key, formatDouble(*bv, 4),
                      formatDouble(value, 4), delta, verdict});
        }
    }
    for (const BenchResults &bb : base) {
        if (!findBench(cur, bb.name))
            t.addRow({bb.name, "(whole bench)", "present", "-", "-",
                      "missing in current"});
    }

    std::printf("bench_diff: %s vs %s (threshold %.2f%%, wall-clock "
                "%.2f%% on %zu benches, %s)\n%s\n",
                base_path.c_str(), cur_path.c_str(), threshold,
                wall_threshold, wall_benches.size(),
                gate ? "gating" : "report-only", t.render().c_str());
    std::printf("bench_diff: %zu compared, %zu regressed, %zu without "
                "baseline\n",
                compared, regressions, missing_base);

    if (!gate)
        return 0;
    if (regressions > 0)
        return 1;
    return 0;
}
