/**
 * @file
 * Ablation of the latency model's key condition (§4.2): reuse saves
 * FLOPs exactly when H/Dout < r_t. Sweeps the hash count H and the
 * output-channel count Dout on a fixed redundant workload and checks
 * the analytic prediction against the measured MAC counts.
 */

#include <cstdio>

#include "bench_common.h"
#include "tensor/im2col.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Ablation: the key condition H/Dout < r_t (§4.2) "
                "===\n\n");
    // One redundant synthetic image through a conv geometry.
    SyntheticConfig cfg;
    cfg.numSamples = 1;
    cfg.noiseStddev = 0.01f;
    Dataset data = makeSyntheticCifar(cfg);

    BenchJson bj("ablation_key_condition");
    size_t agree = 0, total = 0;
    TextTable t;
    t.setHeader({"Dout", "H", "r_t", "H/Dout", "key condition",
                 "FLOP ratio", "MACs saved"});
    for (size_t dout : {8, 16, 32, 64}) {
        for (size_t h : {2, 4, 8, 16}) {
            ConvGeometry geom;
            geom.batch = 1;
            geom.inChannels = 3;
            geom.inHeight = 32;
            geom.inWidth = 32;
            geom.outChannels = dout;
            geom.kernelH = 5;
            geom.kernelW = 5;
            geom.stride = 1;
            geom.pad = 2;
            Tensor sample = im2col(data.gatherImages({0}), geom);
            Rng rng(77);
            Tensor w = Tensor::randomNormal({geom.cols(), dout}, rng,
                                            0.0f, 0.1f);
            ReusePattern p;
            p.granularity = 25;
            p.numHashes = h;
            LatencyEstimate est = estimateLatency(sample, w, p, geom, 7);
            const bool saved = est.stats.reuseMacs < est.stats.exactMacs;
            t.addRow({std::to_string(dout), std::to_string(h),
                      formatDouble(est.redundancyRatio(), 3),
                      formatDouble(static_cast<double>(h) / dout, 3),
                      est.keyConditionHolds(geom) ? "holds" : "violated",
                      formatDouble(est.flopRatio(geom), 3),
                      saved ? "yes" : "no"});
            const std::string key = "Dout" + std::to_string(dout) + "/H" +
                                    std::to_string(h);
            bj.record(key + "/flopRatio", est.flopRatio(geom));
            bj.record(key + "/keyConditionHolds",
                      est.keyConditionHolds(geom) ? 1.0 : 0.0);
            total++;
            if (saved == est.keyConditionHolds(geom))
                agree++;
        }
        t.addSeparator();
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected: 'MACs saved' agrees with the key condition "
                "column (FLOP ratio < 1 iff H/Dout < r_t).\n");
    bj.record("agreementRate", static_cast<double>(agree) / total);
    return 0;
}
