/**
 * @file
 * Table 3 reproduction: per-layer latency breakdown of reuse on the F4
 * board — Transformation (im2col + layout reorder), Clustering, GEMM,
 * Recovering. The paper's observation: after reuse removes >90% of the
 * GEMM computation, GEMM is only a small fraction of layer time and
 * memory-movement stages dominate.
 */

#include <cstdio>

#include "bench_common.h"

using namespace genreuse;
using namespace genreuse::bench;

namespace {

void
breakdownModel(ModelKind kind, const CostModel &model, TextTable &t)
{
    Workbench wb = makeWorkbench(kind);
    Dataset fit = wb.train.slice(0, 4);
    bool first_row = true;
    for (Conv2D *layer : reuseTargets(wb.net, kind)) {
        ReusePattern p =
            pickPatternAnalytically(wb.net, *layer, wb.train, 3, model);
        fitAndInstall(wb.net, *layer, p, fit);

        CostLedger ledger;
        layer->setLedger(&ledger);
        const size_t n = 16;
        for (size_t i = 0; i < n; ++i)
            wb.net.forward(wb.test.gatherImages({i}), false);
        layer->setLedger(nullptr);
        resetAllConvs(wb.net);

        double total = ledger.totalMs(model) / n;
        t.addRow({first_row ? modelName(kind) : "", layer->name(),
                  formatDouble(total, 2),
                  formatDouble(ledger.stageMs(Stage::Transformation,
                                              model) / n, 2),
                  formatDouble(ledger.stageMs(Stage::Clustering, model) /
                               n, 2),
                  formatDouble(ledger.stageMs(Stage::Gemm, model) / n, 2),
                  formatDouble(ledger.stageMs(Stage::Recovering, model) /
                               n, 2)});
        first_row = false;
    }
    t.addSeparator();
}

} // namespace

int
main()
{
    std::printf("=== Table 3: performance breakdown of reuse (unit: ms, "
                "STM32F469I) ===\n\n");
    CostModel model(McuSpec::stm32f469i());
    TextTable t;
    t.setHeader({"Network", "ConvLayer", "Latency", "Transformation",
                 "Clustering", "GEMM", "Recovering"});
    breakdownModel(ModelKind::CifarNet, model, t);
    breakdownModel(ModelKind::SqueezeNet, model, t);
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected shape (paper §5.3.5): GEMM is a minor share; "
                "transformation/recovering (memory ops) dominate.\n");
    return 0;
}
