/**
 * @file
 * Table 3 reproduction: per-layer latency breakdown of reuse on the F4
 * board — Transformation (im2col + layout reorder), Clustering, GEMM,
 * Recovering. The paper's observation: after reuse removes >90% of the
 * GEMM computation, GEMM is only a small fraction of layer time and
 * memory-movement stages dominate.
 *
 * This bench doubles as the op-ledger reconciliation check: every
 * layer's breakdown is measured three ways — the layer-attached
 * CostLedger, the trace registry's per-layer ledger, and the sum of
 * per-image estimateLatencyFitted() predictions — and the bench aborts
 * if the trace disagrees with the attached ledger at all, or if the
 * analytic prediction drifts more than 1% from the measured total.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/profiler.h"
#include "common/trace.h"
#include "core/latency_model.h"

using namespace genreuse;
using namespace genreuse::bench;

namespace {

/** Map a profiler span path to the Table 3 stage it times (by the
 *  leaf name's suffix), or NumStages for non-stage spans. */
Stage
stageOfSpan(const std::string &path)
{
    const size_t slash = path.rfind('/');
    const std::string leaf =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const size_t dot = leaf.rfind('.');
    const std::string kind =
        dot == std::string::npos ? leaf : leaf.substr(dot + 1);
    if (kind == "im2col" || kind == "transform")
        return Stage::Transformation;
    if (kind == "cluster")
        return Stage::Clustering;
    if (kind == "gemm" || kind == "verify")
        return Stage::Gemm;
    if (kind == "recover" || kind == "bias")
        return Stage::Recovering;
    return Stage::NumStages;
}

/**
 * When the profiler is live (GENREUSE_PROFILE), compare the host
 * wall-clock share of each pipeline stage against the cost model's
 * cycle-priced share. Absolute times differ by machine, so only the
 * distribution is compared — both views must agree on the paper's
 * headline shape (memory stages dominate, GEMM is minor).
 */
void
reconcileWallClock(BenchJson &bj, const double model_ms[])
{
    constexpr size_t kStages = static_cast<size_t>(Stage::NumStages);
    double wall_ms[kStages] = {};
    for (const auto &e : profiler::snapshot()) {
        const Stage s = stageOfSpan(e.path);
        if (s != Stage::NumStages)
            wall_ms[static_cast<size_t>(s)] +=
                static_cast<double>(e.stats.totalNs) / 1e6;
    }
    double wall_total = 0.0, model_total = 0.0;
    for (size_t s = 0; s < kStages; ++s) {
        wall_total += wall_ms[s];
        model_total += model_ms[s];
    }
    if (wall_total <= 0.0 || model_total <= 0.0)
        return;

    TextTable t;
    t.setHeader({"Stage", "wall(ms)", "wall share", "model(ms)",
                 "model share"});
    JsonWriter w;
    w.beginObject();
    for (size_t s = 0; s < kStages; ++s) {
        const char *name = stageName(static_cast<Stage>(s));
        const double ws = wall_ms[s] / wall_total;
        const double ms = model_ms[s] / model_total;
        t.addRow({name, formatDouble(wall_ms[s], 2), formatPercent(ws),
                  formatDouble(model_ms[s], 2), formatPercent(ms)});
        w.key(name).beginObject();
        w.key("wallMs").value(wall_ms[s]);
        w.key("wallShare").value(ws);
        w.key("modelMs").value(model_ms[s]);
        w.key("modelShare").value(ms);
        w.endObject();
    }
    w.endObject();
    std::printf("\nPer-stage wall clock (profiler spans, this host) vs "
                "cost model (MCU cycles):\n%s\n",
                t.render().c_str());
    bj.extra("wallVsModel", w.str());
}

void
breakdownModel(ModelKind kind, const CostModel &model, TextTable &t,
               BenchJson &bj, double &worst_drift, double model_ms[])
{
    Workbench wb = makeWorkbench(kind);
    Dataset fit = wb.train.slice(0, 4);
    bool first_row = true;
    for (Conv2D *layer : reuseTargets(wb.net, kind)) {
        ReusePattern p =
            pickPatternAnalytically(wb.net, *layer, wb.train, 3, model);
        auto algo = fitAndInstall(wb.net, *layer, p, fit);

        // Measure with both sinks live: the attached ledger and the
        // trace registry must see identical counts.
        CostLedger ledger;
        layer->setLedger(&ledger);
        trace::reset();
        trace::setEnabled(true);
        const size_t n = evalImages(16);
        std::vector<Tensor> images;
        images.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            wb.net.forward(wb.test.gatherImages({i}), false);
            images.push_back(layer->lastIm2col());
        }
        trace::setEnabled(false);
        layer->setLedger(nullptr);

        CostLedger traced(trace::layerLedger(layer->name()));
        GENREUSE_REQUIRE(traced == ledger,
                         "trace ledger diverges from the attached "
                         "ledger for ", layer->name());

        // Re-predict each image with the very same fitted algo: the
        // analytic path must account for exactly what the runtime did.
        Tensor w = layer->weightMatrix();
        ConvGeometry geom = layer->lastGeometry();
        CostLedger predicted;
        for (const Tensor &im : images) {
            LatencyEstimate est = estimateLatencyFitted(*algo, im, w, geom);
            predicted.merge(est.reuseLedger);
        }
        resetAllConvs(wb.net);

        const double measured_ms = ledger.totalMs(model);
        const double predicted_ms = predicted.totalMs(model);
        const double drift =
            std::abs(measured_ms - predicted_ms) / predicted_ms;
        worst_drift = std::max(worst_drift, drift);
        GENREUSE_REQUIRE(drift <= 0.01,
                         "ledger/latency-model reconciliation failed for ",
                         layer->name(), ": measured ", measured_ms,
                         " ms vs predicted ", predicted_ms, " ms (",
                         100.0 * drift, "% drift)");

        double total = measured_ms / n;
        double tf = ledger.stageMs(Stage::Transformation, model) / n;
        double cl = ledger.stageMs(Stage::Clustering, model) / n;
        double mm = ledger.stageMs(Stage::Gemm, model) / n;
        double rc = ledger.stageMs(Stage::Recovering, model) / n;
        model_ms[static_cast<size_t>(Stage::Transformation)] += tf * n;
        model_ms[static_cast<size_t>(Stage::Clustering)] += cl * n;
        model_ms[static_cast<size_t>(Stage::Gemm)] += mm * n;
        model_ms[static_cast<size_t>(Stage::Recovering)] += rc * n;
        t.addRow({first_row ? modelName(kind) : "", layer->name(),
                  formatDouble(total, 2), formatDouble(tf, 2),
                  formatDouble(cl, 2), formatDouble(mm, 2),
                  formatDouble(rc, 2)});
        first_row = false;

        JsonWriter row;
        row.beginObject();
        row.key("layer").value(layer->name());
        row.key("pattern").value(p.describe());
        row.key("latencyMs").value(total);
        row.key("transformationMs").value(tf);
        row.key("clusteringMs").value(cl);
        row.key("gemmMs").value(mm);
        row.key("recoveringMs").value(rc);
        row.key("predictedMs").value(predicted_ms / n);
        row.key("driftPct").value(100.0 * drift);
        row.endObject();
        bj.extra(std::string(modelName(kind)) + "/" + layer->name(),
                 row.str());
    }
    t.addSeparator();
}

} // namespace

int
main()
{
    std::printf("=== Table 3: performance breakdown of reuse (unit: ms, "
                "STM32F469I) ===\n\n");
    CostModel model(McuSpec::stm32f469i());
    BenchJson bj("table3_perf_breakdown");
    bj.meta("board", model.spec().name);
    double worst_drift = 0.0;
    double model_ms[static_cast<size_t>(Stage::NumStages)] = {};
    TextTable t;
    t.setHeader({"Network", "ConvLayer", "Latency", "Transformation",
                 "Clustering", "GEMM", "Recovering"});
    breakdownModel(ModelKind::CifarNet, model, t, bj, worst_drift,
                   model_ms);
    breakdownModel(ModelKind::SqueezeNet, model, t, bj, worst_drift,
                   model_ms);
    std::printf("%s\n", t.render().c_str());
    if (profiler::hasSpans())
        reconcileWallClock(bj, model_ms);
    std::printf("Expected shape (paper §5.3.5): GEMM is a minor share; "
                "transformation/recovering (memory ops) dominate.\n");
    std::printf("reconciliation: trace == attached ledger on every layer; "
                "worst model-vs-measured drift %.4f%% (limit 1%%)\n",
                100.0 * worst_drift);
    bj.record("worstDriftPct", 100.0 * worst_drift);
    return 0;
}
