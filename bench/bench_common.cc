#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/eventlog.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/provenance.h"
#include "core/accuracy_model.h"
#include "core/canary.h"
#include "core/latency_model.h"
#include "core/pareto.h"
#include "core/reuse_audit.h"

namespace genreuse::bench {

bool
smokeMode()
{
    const char *v = std::getenv("GENREUSE_BENCH_SMOKE");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

bool
guardMode()
{
    const char *v = std::getenv("GENREUSE_GUARD");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

size_t
evalImages(size_t full)
{
    return smokeMode() ? std::min<size_t>(full, 4) : full;
}

BenchJson::BenchJson(std::string bench_name) : name_(std::move(bench_name))
{
    // A suffix keeps re-runs of the same bench under different modes
    // (e.g. the guard-enabled smoke pass) from clobbering each other's
    // records in the suite directory.
    const char *suffix = std::getenv("GENREUSE_BENCH_NAME_SUFFIX");
    if (suffix && *suffix)
        name_ += suffix;
    const char *dir = std::getenv("GENREUSE_BENCH_JSON_DIR");
    std::string d = (dir && *dir) ? dir : ".";
    if (d.back() != '/')
        d += '/';
    path_ = d + "BENCH_" + name_ + ".json";
}

BenchJson::~BenchJson()
{
    write();
}

void
BenchJson::meta(const std::string &key, const std::string &value)
{
    meta_.push_back({key, true, value, 0.0});
}

void
BenchJson::meta(const std::string &key, double value)
{
    meta_.push_back({key, false, {}, value});
}

void
BenchJson::record(const std::string &key, double value)
{
    results_.push_back({key, false, {}, value});
}

void
BenchJson::addSeries(const std::string &name,
                     const std::vector<SeriesPoint> &series)
{
    series_.emplace_back(name, series);
}

void
BenchJson::extra(const std::string &key, const std::string &raw_json)
{
    extra_.emplace_back(key, raw_json);
}

namespace {

void
writeScalars(JsonWriter &w, const std::vector<BenchJson::Scalar> &items);

} // namespace

void
BenchJson::write()
{
    if (written_)
        return;
    written_ = true;

    JsonWriter w;
    w.beginObject();
    w.key("schema").value("genreuse.bench/1");
    w.key("bench").value(name_);
    w.key("smoke").value(smokeMode());
    // Which commit/compiler/SIMD level produced this record — so a
    // diff against a stale or cross-machine baseline says so instead
    // of reading as a performance change (bench_diff compares these).
    w.key("provenance").raw(provenance::toJson());
    w.key("meta");
    writeScalars(w, meta_);
    w.key("results");
    writeScalars(w, results_);
    w.key("series").beginObject();
    for (const auto &[name, series] : series_) {
        w.key(name).beginArray();
        for (const SeriesPoint &p : series) {
            w.beginObject();
            w.key("label").value(p.label);
            w.key("accuracy").value(p.accuracy);
            w.key("latencyMs").value(p.latencyMs);
            w.key("redundancy").value(p.redundancy);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
    w.key("extra").beginObject();
    for (const auto &[key, raw] : extra_)
        w.key(key).raw(raw);
    // Guard decisions made while this bench ran (fallbacks taken,
    // re-cluster counts, error-bound margins) ride along so fallback
    // cost can be correlated with the latency numbers.
    if (!guard::snapshot().empty())
        w.key("guardEvents").raw(guard::toJson());
    // Wall-clock span statistics (schema genreuse.prof/1) and process
    // metrics recorded while this bench ran — only when the profiler
    // was enabled (GENREUSE_PROFILE), so default records are unchanged.
    if (profiler::hasSpans())
        w.key("profile").raw(profiler::toJson());
    if (metrics::anyNonZero())
        w.key("metrics").raw(metrics::toJson());
    // Flight-recorder traffic (counts only, no event bodies) — only
    // when the journal was on (GENREUSE_BLACKBOX / setEnabled), so
    // default records are unchanged.
    if (eventlog::recorded() > 0)
        w.key("events").raw(eventlog::summaryJson());
    // Reuse-efficacy audit (observed r_t vs the fit-time model, cluster
    // histograms, guard budget burn — schema genreuse.audit/1) and the
    // accuracy canary's per-layer error tracking ride along when armed
    // (GENREUSE_AUDIT / GENREUSE_CANARY), so BENCH records from an
    // audited run carry the efficacy evidence next to the latencies.
    if (audit::enabled())
        w.key("audit").raw(audit::toJson());
    if (canary::enabled())
        w.key("canary").raw(canary::toJson());
    w.endObject();
    w.endObject();

    std::string doc = w.str();
    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (!f) {
        warn("cannot write bench JSON to ", path_);
        return;
    }
    std::fputs(doc.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("[bench-json] wrote %s\n", path_.c_str());
}

namespace {

void
writeScalars(JsonWriter &w, const std::vector<BenchJson::Scalar> &items)
{
    w.beginObject();
    for (const auto &it : items) {
        w.key(it.key);
        if (it.isString)
            w.value(it.s);
        else
            w.value(it.d);
    }
    w.endObject();
}

} // namespace

const char *
modelName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::CifarNet:
        return "CifarNet";
      case ModelKind::ZfNet:
        return "ZfNet";
      case ModelKind::SqueezeNet:
        return "SqueezeNet (vanilla)";
      case ModelKind::SqueezeNetBypass:
        return "SqueezeNet (bypass)";
      case ModelKind::ResNet18:
        return "ResNet-18";
      default:
        return "?";
    }
}

namespace {

Network
buildModel(ModelKind kind, Rng &rng)
{
    switch (kind) {
      case ModelKind::CifarNet:
        return makeCifarNet(rng);
      case ModelKind::ZfNet:
        return makeZfNet(rng);
      case ModelKind::SqueezeNet:
        return makeSqueezeNet(rng, false);
      case ModelKind::SqueezeNetBypass:
        return makeSqueezeNet(rng, true);
      case ModelKind::ResNet18:
        return makeResNet18(rng, 10, 32);
      default:
        panic("unknown model kind");
    }
}

size_t
defaultTrainSamples(ModelKind kind)
{
    switch (kind) {
      case ModelKind::ZfNet:
        return 160;
      case ModelKind::ResNet18:
        return 64;
      default:
        return 224;
    }
}

size_t
defaultEpochs(ModelKind kind)
{
    switch (kind) {
      case ModelKind::ResNet18:
        return 2;
      case ModelKind::SqueezeNet:
      case ModelKind::SqueezeNetBypass:
        return 4;
      default:
        return 3;
    }
}

double
defaultLearningRate(ModelKind kind)
{
    switch (kind) {
      case ModelKind::SqueezeNet:
      case ModelKind::SqueezeNetBypass:
      case ModelKind::ResNet18:
        return 0.02; // BN-normalized nets take the higher rate
      default:
        return 0.01;
    }
}

} // namespace

Workbench
makeWorkbench(ModelKind kind, uint64_t seed, size_t train_samples,
              size_t test_samples, size_t epochs)
{
    Rng rng(seed);
    Workbench wb(buildModel(kind, rng));

    const bool big_input = kind == ModelKind::ResNet18;
    if (train_samples == 0)
        train_samples = defaultTrainSamples(kind);
    if (epochs == 0)
        epochs = defaultEpochs(kind);
    if (smokeMode()) {
        // Same pipeline, CI-friendly sizes; records are tagged smoke.
        train_samples = std::min<size_t>(train_samples, 48);
        test_samples = std::min<size_t>(test_samples, 24);
        epochs = 1;
    }
    // Noisier, less redundant images than the unit-test defaults so
    // accuracies land below 1.0 and the accuracy axis of the spectra
    // is informative (paper figures span ~0.70-0.85).
    constexpr float kBenchNoise = 0.25f;
    constexpr float kBenchRedundancy = 0.58f;
    if (big_input) {
        wb.train = makeSyntheticImagenet64(train_samples, seed + 1,
                                           kBenchNoise, kBenchRedundancy);
        wb.test = makeSyntheticImagenet64(test_samples, seed + 2,
                                          kBenchNoise, kBenchRedundancy);
    } else {
        SyntheticConfig cfg;
        cfg.noiseStddev = kBenchNoise;
        cfg.redundancy = kBenchRedundancy;
        cfg.numSamples = train_samples;
        cfg.seed = seed + 1;
        wb.train = makeSyntheticCifar(cfg);
        cfg.numSamples = test_samples;
        cfg.seed = seed + 2;
        wb.test = makeSyntheticCifar(cfg);
    }

    TrainConfig tcfg;
    tcfg.epochs = epochs;
    tcfg.batchSize = 16;
    tcfg.sgd.learningRate = defaultLearningRate(kind);
    tcfg.sgd.momentum = 0.9;
    tcfg.sgd.weightDecay = 1e-4;
    tcfg.shuffleSeed = seed + 3;
    train(wb.net, wb.train, tcfg);
    wb.baselineAccuracy = evaluate(wb.net, wb.test, 16);
    return wb;
}

std::vector<Conv2D *>
reuseTargets(Network &net, ModelKind kind)
{
    std::vector<Conv2D *> all = net.convLayers();
    if (kind == ModelKind::SqueezeNet ||
        kind == ModelKind::SqueezeNetBypass) {
        std::vector<Conv2D *> targets;
        for (auto *c : all) {
            if (c->name().find("expand_3x3") != std::string::npos)
                targets.push_back(c);
        }
        return targets;
    }
    if (kind == ModelKind::ResNet18) {
        std::vector<Conv2D *> targets;
        for (auto *c : all) {
            // Skip 1x1 projections: negligible reuse room.
            if (c->name().find(".proj") == std::string::npos &&
                c->name() != "conv1")
                targets.push_back(c);
        }
        return targets;
    }
    return all;
}

namespace {

/**
 * Install a pattern on a layer — wrapped in the runtime guard when
 * GENREUSE_GUARD is set. Returns the reuse algorithm (the guarded
 * wrapper's inner one, via an aliasing pointer) so callers read stats
 * the same way in both modes.
 */
std::shared_ptr<ReuseConvAlgo>
installPattern(Network &net, Conv2D &layer, const ReusePattern &p,
               const Dataset &fit, HashMode mode, uint64_t seed)
{
    if (guardMode()) {
        auto guarded =
            fitAndInstallGuarded(net, layer, p, fit, {}, mode, seed);
        return std::shared_ptr<ReuseConvAlgo>(guarded,
                                              &guarded->inner());
    }
    return fitAndInstall(net, layer, p, fit, mode, seed);
}

} // namespace

SeriesPoint
measurePatternEverywhere(Workbench &wb, ModelKind kind,
                         const ReusePattern &base_pattern,
                         const CostModel &model, size_t eval_images,
                         HashMode mode)
{
    Dataset fit = wb.train.slice(0, std::min<size_t>(4, wb.train.size()));
    for (Conv2D *layer : reuseTargets(wb.net, kind)) {
        // Re-derive the conventional granularity per layer when the
        // base pattern uses granularity 0 as "per-layer tile".
        ReusePattern p = base_pattern;
        installPattern(wb.net, *layer, p, fit, mode, 99);
    }
    Measurement m = measureNetwork(wb.net, wb.test, model, eval_images);
    resetAllConvs(wb.net);

    SeriesPoint pt;
    pt.label = base_pattern.describe();
    pt.accuracy = m.accuracy;
    pt.latencyMs = m.perImageMs;
    pt.redundancy = m.stats.redundancyRatio();
    return pt;
}

std::vector<SeriesPoint>
sotaSpectrum(Workbench &wb, ModelKind kind, const CostModel &model,
             size_t eval_images)
{
    std::vector<SeriesPoint> series;
    Dataset fit = wb.train.slice(0, std::min<size_t>(4, wb.train.size()));
    for (size_t h : {1, 2, 4, 6, 8}) {
        for (Conv2D *layer : reuseTargets(wb.net, kind)) {
            // The conventional unit: a 1-D vector of one kernel tile
            // within one channel, vertical direction, default order.
            ReusePattern p;
            p.granularity = layer->kernelSize() * layer->kernelSize();
            p.numHashes = h;
            installPattern(wb.net, *layer, p, fit,
                           HashMode::Learned, 99);
        }
        Measurement m = measureNetwork(wb.net, wb.test, model, eval_images);
        resetAllConvs(wb.net);
        SeriesPoint pt;
        pt.label = "SOTA H=" + std::to_string(h);
        pt.accuracy = m.accuracy;
        pt.latencyMs = m.perImageMs;
        pt.redundancy = m.stats.redundancyRatio();
        series.push_back(pt);
    }
    return series;
}

ReusePattern
pickPatternAnalytically(Network &net, Conv2D &layer, const Dataset &train,
                        size_t num_hashes, const CostModel &model)
{
    // Capture a batch-1 im2col sample.
    layer.resetAlgo();
    Tensor one = train.gatherImages({0});
    net.forward(one, /*training=*/false);
    Tensor sample = layer.lastIm2col();
    ConvGeometry geom = layer.lastGeometry();
    Tensor w = layer.weightMatrix();

    // Generalized candidate scope, fixed H.
    PatternScope scope = PatternScope::defaultScope(geom);
    scope.hashCounts = {num_hashes};
    scope.blockRows = {1, 2};
    std::vector<ReusePattern> candidates = enumeratePatterns(scope, geom);
    GENREUSE_REQUIRE(!candidates.empty(), "no candidates for ",
                     layer.name());

    // The conventional pattern is the reference: generalized reuse is
    // a superset of conventional reuse, so the choice must never be
    // predicted worse on *both* axes. Score all candidates with the
    // analytic models, then take the best predicted speedup among the
    // candidates whose error bound does not exceed the conventional
    // pattern's; keep the conventional pattern when nothing beats it.
    ReusePattern conventional;
    conventional.granularity = geom.kernelH * geom.kernelW;
    conventional.numHashes = num_hashes;
    double conv_bound =
        accuracyBound(sample, w, conventional, geom, 7).bound;
    double conv_speedup =
        estimateLatency(sample, w, conventional, geom, 7).speedup(model);

    ReusePattern chosen = conventional;
    double best_speedup = conv_speedup;
    for (const ReusePattern &candidate : candidates) {
        AccuracyBound b = accuracyBound(sample, w, candidate, geom, 7);
        if (b.bound > conv_bound * 1.05 + 1e-12)
            continue;
        LatencyEstimate est =
            estimateLatency(sample, w, candidate, geom, 7);
        double speedup = est.speedup(model);
        if (speedup > best_speedup) {
            best_speedup = speedup;
            chosen = candidate;
        }
    }
    return chosen;
}

std::vector<SeriesPoint>
generalizedSpectrum(Workbench &wb, ModelKind kind, const CostModel &model,
                    size_t eval_images)
{
    std::vector<SeriesPoint> series;
    Dataset fit = wb.train.slice(0, std::min<size_t>(4, wb.train.size()));
    for (size_t h : {1, 2, 4, 6}) {
        for (Conv2D *layer : reuseTargets(wb.net, kind)) {
            ReusePattern p =
                pickPatternAnalytically(wb.net, *layer, wb.train, h, model);
            installPattern(wb.net, *layer, p, fit,
                           HashMode::Learned, 99);
        }
        Measurement m = measureNetwork(wb.net, wb.test, model, eval_images);
        resetAllConvs(wb.net);
        SeriesPoint pt;
        pt.label = "Ours H=" + std::to_string(h);
        pt.accuracy = m.accuracy;
        pt.latencyMs = m.perImageMs;
        pt.redundancy = m.stats.redundancyRatio();
        series.push_back(pt);
    }
    return series;
}

SingleLayerResult
measureSingleLayer(Workbench &wb, Conv2D &layer, const ReusePattern &pattern,
                   const CostModel &model, size_t eval_images,
                   HashMode mode)
{
    Dataset fit = wb.train.slice(0, std::min<size_t>(4, wb.train.size()));
    auto algo = installPattern(wb.net, layer, pattern, fit, mode, 99);

    CostLedger ledger;
    layer.setLedger(&ledger);
    const size_t n = std::min(eval_images, wb.test.size());
    size_t correct = 0;
    for (size_t i = 0; i < n; ++i) {
        Tensor x = wb.test.gatherImages({i});
        Tensor logits = wb.net.forward(x, false);
        size_t best = 0;
        for (size_t c = 1; c < logits.shape().cols(); ++c)
            if (logits.at2(0, c) > logits.at2(0, best))
                best = c;
        if (wb.test.labels[i] >= 0 &&
            best == static_cast<size_t>(wb.test.labels[i]))
            correct++;
    }
    layer.setLedger(nullptr);

    SingleLayerResult result;
    result.pattern = pattern;
    result.redundancy = algo->lastStats().redundancyRatio();
    result.accuracy = static_cast<double>(correct) / n;
    result.layerReuseMs = ledger.totalMs(model) / static_cast<double>(n);
    result.layerExactMs =
        exactConvLedger(layer.lastGeometry()).totalMs(model);
    resetAllConvs(wb.net);
    return result;
}

void
printSeries(const std::string &title, const std::vector<SeriesPoint> &series)
{
    TextTable t;
    t.setHeader({"config", "accuracy", "latency(ms)", "r_t"});
    for (const auto &p : series) {
        t.addRow({p.label, formatDouble(p.accuracy, 4),
                  formatDouble(p.latencyMs, 2),
                  formatDouble(p.redundancy, 3)});
    }
    std::printf("%s\n%s\n", title.c_str(), t.render().c_str());
}

SpectrumComparison
compareSpectra(const std::vector<SeriesPoint> &sota,
               const std::vector<SeriesPoint> &ours, double accuracy_slack,
               double latency_slack_ratio)
{
    SpectrumComparison cmp;
    for (const auto &o : ours) {
        for (const auto &s : sota) {
            if (o.accuracy >= s.accuracy - accuracy_slack &&
                o.latencyMs > 0.0) {
                cmp.speedupAtMatchedAccuracy =
                    std::max(cmp.speedupAtMatchedAccuracy,
                             s.latencyMs / o.latencyMs);
            }
            if (o.latencyMs <= s.latencyMs * latency_slack_ratio) {
                cmp.accuracyGainAtMatchedLatency =
                    std::max(cmp.accuracyGainAtMatchedLatency,
                             o.accuracy - s.accuracy);
            }
        }
    }
    return cmp;
}

} // namespace genreuse::bench
