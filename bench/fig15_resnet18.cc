/**
 * @file
 * Figure 15 reproduction: ResNet-18 on 64x64 inputs (§5.3.7). Per
 * conv layer: generalized-reuse speedup over conventional reuse and
 * the accuracy delta; plus the end-to-end latency reduction. The
 * paper reports up to 1.63x layer speedups (all layers improved
 * except Conv3-2) and >20% end-to-end latency reduction.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/math_util.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Figure 15: ResNet-18 on 64x64 images (F4 board) "
                "===\n\n");
    CostModel model(McuSpec::stm32f469i());
    BenchJson bj("fig15_resnet18");
    bj.meta("board", model.spec().name);
    Workbench wb = makeWorkbench(ModelKind::ResNet18, 1000,
                                 /*train_samples=*/96,
                                 /*test_samples=*/24, /*epochs=*/3);
    std::printf("baseline exact accuracy: %.4f\n\n", wb.baselineAccuracy);
    bj.record("baselineAccuracy", wb.baselineAccuracy);

    TextTable t;
    t.setHeader({"layer", "SOTA ms", "ours ms", "speedup", "dAccuracy"});
    std::vector<double> speedups;
    std::vector<std::pair<Conv2D *, ReusePattern>> chosen;
    // Per-layer: conventional reuse vs the analytically chosen pattern.
    for (Conv2D *layer : reuseTargets(wb.net, ModelKind::ResNet18)) {
        ReusePattern conventional;
        conventional.granularity =
            layer->kernelSize() * layer->kernelSize();
        conventional.numHashes = 4;
        SingleLayerResult base = measureSingleLayer(
            wb, *layer, conventional, model, evalImages(10));

        ReusePattern ours =
            pickPatternAnalytically(wb.net, *layer, wb.train, 3, model);
        chosen.emplace_back(layer, ours);
        SingleLayerResult r =
            measureSingleLayer(wb, *layer, ours, model, evalImages(10));

        double speedup = base.layerReuseMs / r.layerReuseMs;
        speedups.push_back(speedup);
        t.addRow({layer->name(), formatDouble(base.layerReuseMs, 2),
                  formatDouble(r.layerReuseMs, 2), formatSpeedup(speedup),
                  formatDouble(r.accuracy - base.accuracy, 4)});
        bj.record(layer->name() + "/speedup", speedup);
        bj.record(layer->name() + "/dAccuracy", r.accuracy - base.accuracy);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("geomean layer speedup: %s (paper: up to 1.63x)\n",
                formatSpeedup(geomean(speedups)).c_str());
    bj.record("geomeanLayerSpeedup", geomean(speedups));

    // End-to-end latency: conventional everywhere vs the per-layer
    // choices from the loop above installed together.
    ReusePattern conventional;
    conventional.granularity = 9;
    conventional.numHashes = 4;
    SeriesPoint sota = measurePatternEverywhere(
        wb, ModelKind::ResNet18, conventional, model, evalImages(10));

    Dataset fit = wb.train.slice(0, 4);
    for (auto &[layer, pattern] : chosen)
        fitAndInstall(wb.net, *layer, pattern, fit);
    Measurement ours_e2e =
        measureNetwork(wb.net, wb.test, model, evalImages(10));
    resetAllConvs(wb.net);

    double reduction = 100.0 * (1.0 - ours_e2e.perImageMs / sota.latencyMs);
    std::printf("end-to-end: SOTA %.1f ms (acc %.3f) -> ours %.1f ms "
                "(acc %.3f): %.0f%% latency reduction (paper: >20%%)\n",
                sota.latencyMs, sota.accuracy, ours_e2e.perImageMs,
                ours_e2e.accuracy, reduction);
    bj.record("endToEnd/sotaMs", sota.latencyMs);
    bj.record("endToEnd/oursMs", ours_e2e.perImageMs);
    bj.record("endToEnd/latencyReductionPct", reduction);
    return 0;
}
