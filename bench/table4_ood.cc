/**
 * @file
 * Table 4 reproduction: out-of-distribution behaviour (§5.3.6). A
 * CifarNet trained on the in-distribution (CIFAR-like) set is tested
 * on an OOD (SVHN-like) set: accuracy collapses to near chance, and
 * the max-softmax detector (threshold 0.7) flags OOD samples. The
 * paper finds the reuse-optimized model keeps ID accuracy, stays
 * appropriately bad on OOD, and detects OOD markedly better
 * (0.363 -> 0.674) because reuse regularizes overconfident outputs.
 */

#include <cstdio>

#include "bench_common.h"
#include "nn/loss.h"

using namespace genreuse;
using namespace genreuse::bench;

int
main()
{
    std::printf("=== Table 4: OOD data performance (CifarNet, max-softmax "
                "detector, threshold 0.7) ===\n\n");
    BenchJson bj("table4_ood");
    Workbench wb = makeWorkbench(ModelKind::CifarNet);
    Dataset ood = makeSyntheticSvhn(96, 777);

    auto evalRow = [&](const char *name) {
        Tensor id_logits = evaluateLogits(wb.net, wb.test, evalImages(16));
        Tensor ood_logits = evaluateLogits(wb.net, ood, evalImages(16));
        double id_acc = accuracy(id_logits, wb.test.labels);
        double ood_acc = accuracy(ood_logits, ood.labels);
        double detect = oodDetectionRate(ood_logits, 0.7);
        bj.record(std::string(name) + "/idAccuracy", id_acc);
        bj.record(std::string(name) + "/oodAccuracy", ood_acc);
        bj.record(std::string(name) + "/detectionRate", detect);
        return std::vector<std::string>{
            name, "synthetic-cifar", "synthetic-svhn",
            formatDouble(id_acc, 4), formatDouble(ood_acc, 4),
            formatDouble(detect, 3)};
    };

    TextTable t;
    t.setHeader({"Model", "ID data", "OOD data", "Acc (ID)", "Acc (OOD)",
                 "Detection rate"});
    t.addRow(evalRow("Traditional CNN"));

    // Install generalized reuse on both convolutions.
    CostModel model(McuSpec::stm32f469i());
    Dataset fit = wb.train.slice(0, 4);
    for (Conv2D *layer : reuseTargets(wb.net, ModelKind::CifarNet)) {
        // A moderate configuration (H = 5): the paper's point is that
        // reuse keeps ID accuracy close while the OOD detector improves.
        ReusePattern p =
            pickPatternAnalytically(wb.net, *layer, wb.train, 5, model);
        fitAndInstall(wb.net, *layer, p, fit);
    }
    t.addRow(evalRow("CNN with reuse"));

    // And after a brief reuse-in-the-loop fine-tune (the paper's
    // models are trained with reuse active): ID accuracy recovers,
    // while part of the detector gain is traded back as the network
    // re-learns confidence under the approximation.
    TrainConfig ft;
    ft.epochs = 1;
    ft.batchSize = 16;
    ft.sgd.learningRate = 0.005;
    ft.sgd.momentum = 0.9;
    train(wb.net, wb.train, ft);
    t.addRow(evalRow("CNN with reuse + fine-tune"));
    resetAllConvs(wb.net);

    std::printf("%s\n", t.render().c_str());
    std::printf("Expected shape (paper): OOD accuracy near chance for "
                "all rows; reuse raises the max-softmax OOD detection "
                "rate (approximation regularizes overconfidence). "
                "Fine-tuning trades part of that regularization back "
                "for ID accuracy.\n");
    return 0;
}
