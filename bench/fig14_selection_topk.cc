/**
 * @file
 * Figure 14 reproduction: effectiveness of the analytic model for
 * pattern selection on CifarNet Conv2. Over a 25-candidate space, the
 * top-k accuracy achievable when choosing k patterns by (a) the
 * analytic model, (b) the redundancy-ratio heuristic, and (c) random
 * order, against the empirical upper bound from enumerating all 25.
 * The paper's finding: the analytic model reaches the best accuracy
 * with far fewer trials.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/args.h"
#include "common/thread_pool.h"
#include "core/explorer.h"

using namespace genreuse;
using namespace genreuse::bench;

namespace {

/** Best accuracy among the first k of an ordering. */
double
topK(const std::vector<size_t> &order, const std::vector<double> &acc,
     size_t k)
{
    double best = 0.0;
    for (size_t i = 0; i < std::min(k, order.size()); ++i)
        best = std::max(best, acc[order[i]]);
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    std::printf("=== Figure 14: analytic-model pattern selection, "
                "CifarNet Conv2, 25 candidates ===\n\n");
    CostModel model(McuSpec::stm32f469i());
    BenchJson bj("fig14_selection_topk");
    bj.meta("board", model.spec().name);
    Workbench wb = makeWorkbench(ModelKind::CifarNet);
    Conv2D *layer = wb.net.findConv("conv2");

    // Build a 25-candidate space.
    layer->resetAlgo();
    Tensor one = wb.train.gatherImages({0});
    wb.net.forward(one, false);
    ConvGeometry geom = layer->lastGeometry();
    PatternScope scope = PatternScope::defaultScope(geom);
    scope.hashCounts = {2, 4, 6};
    std::vector<ReusePattern> candidates = enumeratePatterns(scope, geom);
    if (candidates.size() > 25)
        candidates.resize(25);
    std::printf("candidate patterns: %zu\n", candidates.size());

    // Analytic profiles for ranking, via the exploration engine
    // (bit-identical to the serial loop for any --threads value).
    ThreadPool pool(static_cast<size_t>(args.getInt("threads", 0)));
    ExplorationCache cache(layer->lastIm2col(), layer->weightMatrix(),
                           geom);
    std::vector<CandidateProfile> profiles =
        profileCandidates(candidates, cache, 7, pool);

    // Empirical accuracy of every candidate (the upper-bound oracle).
    std::vector<double> acc(candidates.size(), 0.0);
    for (size_t i = 0; i < candidates.size(); ++i) {
        acc[i] = measureSingleLayer(wb, *layer, candidates[i], model,
                                    evalImages(32))
                     .accuracy;
    }
    double oracle = *std::max_element(acc.begin(), acc.end());

    // Figure 14 plots top-k *accuracy*, so the analytic ordering uses
    // the accuracy bound alone (tightest bound first); the workflow's
    // bi-objective ranking is exercised elsewhere.
    std::vector<size_t> analytic(candidates.size());
    for (size_t i = 0; i < analytic.size(); ++i)
        analytic[i] = i;
    std::sort(analytic.begin(), analytic.end(), [&](size_t a, size_t b) {
        return profiles[a].accuracy.bound < profiles[b].accuracy.bound;
    });
    std::vector<size_t> heuristic = rankByRedundancyHeuristic(profiles);
    (void)model;

    // The random strategy is averaged over many shuffles (a single
    // shuffle is all noise).
    const size_t random_trials = 20;
    std::vector<std::vector<size_t>> randoms;
    Rng rng(123);
    for (size_t t2 = 0; t2 < random_trials; ++t2) {
        std::vector<size_t> order(candidates.size());
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        rng.shuffle(order);
        randoms.push_back(std::move(order));
    }
    auto randomTopK = [&](size_t k) {
        double sum = 0.0;
        for (const auto &order : randoms)
            sum += topK(order, acc, k);
        return sum / random_trials;
    };

    TextTable t;
    t.setHeader({"k", "analytic model", "heuristic (r_t)",
                 "random (mean of 20)", "upper bound"});
    bj.meta("candidates", static_cast<double>(candidates.size()));
    bj.record("oracleAccuracy", oracle);
    for (size_t k : {1, 2, 3, 5, 8, 12, 25}) {
        if (k > candidates.size())
            k = candidates.size();
        t.addRow({std::to_string(k), formatDouble(topK(analytic, acc, k), 4),
                  formatDouble(topK(heuristic, acc, k), 4),
                  formatDouble(randomTopK(k), 4),
                  formatDouble(oracle, 4)});
        const std::string key = "k" + std::to_string(k);
        bj.record(key + "/analytic", topK(analytic, acc, k));
        bj.record(key + "/heuristic", topK(heuristic, acc, k));
        bj.record(key + "/random", randomTopK(k));
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("The analytic model should reach the upper bound with a "
                "smaller k than the heuristic or random order.\n");
    return 0;
}
