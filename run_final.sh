#!/bin/bash
# Final deliverable runs: full test suite then every bench binary.
cd /root/repo
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
echo "TESTS_DONE rc=${PIPESTATUS[0]}" >> /root/repo/final_run_status.txt
(for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
        "$b"
    fi
done) 2>&1 | tee /root/repo/bench_output.txt
echo "BENCHES_DONE rc=$?" >> /root/repo/final_run_status.txt
